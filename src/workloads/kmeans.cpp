#include "workloads/kmeans.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/datagen.hpp"

namespace bvl::wl {

namespace {

/// Points drawn from k Gaussian-ish blobs so clustering is meaningful.
class PointSource final : public LineSource {
 public:
  PointSource(Bytes target_bytes, std::uint64_t seed, int k, int dims)
      : LineSource(target_bytes, seed), k_(k), dims_(dims) {}

 protected:
  void make_line(Pcg32& rng, std::string& line) override {
    int blob = static_cast<int>(rng.uniform(0, static_cast<std::uint64_t>(k_ - 1)));
    for (int d = 0; d < dims_; ++d) {
      if (d) line += ' ';
      // Blob centers on a lattice; triangular noise around them.
      double center = 10.0 * ((blob + d) % k_);
      double noise = rng.uniform_real(-1.0, 1.0) + rng.uniform_real(-1.0, 1.0);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", center + noise);
      line += buf;
    }
  }

 private:
  int k_;
  int dims_;
};

std::string serialize_point(const std::vector<double>& p, double weight) {
  std::string out = std::to_string(weight);
  for (double v : p) {
    out += ' ';
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    out += buf;
  }
  return out;
}

class KMeansMapper final : public mr::Mapper {
 public:
  KMeansMapper(const std::vector<std::vector<double>>* centroids, int dims)
      : centroids_(centroids), dims_(dims) {}

  void map(const mr::Record& rec, mr::Emitter& out, mr::WorkCounters& c) override {
    std::vector<double> p = parse_point(rec.value, dims_);
    if (p.empty()) return;
    c.token_ops += static_cast<double>(dims_);
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < centroids_->size(); ++i) {
      double d = 0;
      for (int j = 0; j < dims_; ++j) {
        double diff = p[static_cast<std::size_t>(j)] - (*centroids_)[i][static_cast<std::size_t>(j)];
        d += diff * diff;
      }
      c.compute_units += static_cast<double>(dims_);  // FP ops per distance
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(i);
      }
    }
    out.emit("c" + std::to_string(best), serialize_point(p, 1.0));
  }

 private:
  const std::vector<std::vector<double>>* centroids_;
  int dims_;
};

/// Combiner and reducer both fold (weight, sum-vector) pairs; the
/// reducer emits the new centroid (the weighted mean).
class CentroidFold final : public mr::Reducer {
 public:
  CentroidFold(int dims, bool final_stage) : dims_(dims), final_(final_stage) {}

  void reduce(std::string_view key, const std::vector<std::string_view>& values, mr::Emitter& out,
              mr::WorkCounters& c) override {
    std::vector<double> acc(static_cast<std::size_t>(dims_), 0.0);
    double weight = 0;
    for (const auto& v : values) {
      std::vector<double> wp = parse_point(v, dims_ + 1);  // weight + dims
      if (wp.empty()) continue;
      weight += wp[0];
      for (int j = 0; j < dims_; ++j) acc[static_cast<std::size_t>(j)] += wp[static_cast<std::size_t>(j + 1)] * wp[0];
      c.compute_units += static_cast<double>(dims_);
    }
    if (weight <= 0) return;
    if (final_) {
      std::vector<double> mean(acc);
      for (double& v : mean) v /= weight;
      out.emit(key, serialize_point(mean, weight));
    } else {
      // Partial fold: keep the weighted sum so folding is associative.
      std::vector<double> partial(acc);
      for (double& v : partial) v /= weight;
      out.emit(key, serialize_point(partial, weight));
    }
  }

 private:
  int dims_;
  bool final_;
};

}  // namespace

std::vector<double> parse_point(std::string_view line, int dims) {
  std::vector<double> p;
  p.reserve(static_cast<std::size_t>(dims));
  const char* cur = line.data();
  const char* end = cur + line.size();
  while (cur < end && static_cast<int>(p.size()) < dims) {
    while (cur < end && *cur == ' ') ++cur;
    double v = 0;
    // from_chars works on the [cur, end) range directly, so views into
    // a larger buffer parse safely without a NUL terminator.
    auto [next, ec] = std::from_chars(cur, end, v);
    if (ec != std::errc() || next == cur) break;
    p.push_back(v);
    cur = next;
  }
  if (static_cast<int>(p.size()) != dims) return {};
  return p;
}

KMeansJob::KMeansJob(int k, int dims) : k_(k), dims_(dims) {
  require(k_ >= 2 && k_ <= 64, "KMeansJob: k out of [2,64]");
  require(dims_ >= 1 && dims_ <= 64, "KMeansJob: dims out of [1,64]");
}

std::unique_ptr<mr::SplitSource> KMeansJob::open_split(std::uint64_t block_id, Bytes exec_bytes,
                                                       std::uint64_t seed) const {
  return std::make_unique<PointSource>(exec_bytes, seed ^ block_id, k_, dims_);
}

std::unique_ptr<mr::Mapper> KMeansJob::make_mapper() const {
  require(!centroids_.empty(), "KMeansJob: prepare() must run before mapping");
  return std::make_unique<KMeansMapper>(&centroids_, dims_);
}

std::unique_ptr<mr::Reducer> KMeansJob::make_reducer() const {
  return std::make_unique<CentroidFold>(dims_, /*final_stage=*/true);
}

std::unique_ptr<mr::Reducer> KMeansJob::make_combiner() const {
  return std::make_unique<CentroidFold>(dims_, /*final_stage=*/false);
}

void KMeansJob::prepare(Bytes exec_bytes, std::uint64_t seed, mr::WorkCounters& c) {
  // Seed centroids from the first k sampled points (Forgy).
  PointSource source(exec_bytes, seed, k_, dims_);
  centroids_.clear();
  mr::Record rec;
  while (static_cast<int>(centroids_.size()) < k_ && source.next(rec)) {
    std::vector<double> p = parse_point(rec.value, dims_);
    c.input_records += 1;
    c.input_bytes += static_cast<double>(rec.bytes());
    if (!p.empty()) centroids_.push_back(std::move(p));
  }
  require(static_cast<int>(centroids_.size()) == k_, "KMeansJob::prepare: not enough points");
}

}  // namespace bvl::wl
