#include "workloads/sort.hpp"

#include "workloads/datagen.hpp"

namespace bvl::wl {

namespace {
class SortMapper final : public mr::Mapper {
 public:
  void map(const mr::Record& rec, mr::Emitter& out, mr::WorkCounters& c) override {
    // Row format "key\tpayload": re-key on the data key so the
    // spill/merge path produces sorted output.
    std::size_t tab = rec.value.find('\t');
    c.token_ops += 1;
    if (tab == std::string_view::npos) {
      out.emit(rec.value, "");
      return;
    }
    out.emit(rec.value.substr(0, tab), rec.value.substr(tab + 1));
  }
};
}  // namespace

std::unique_ptr<mr::SplitSource> SortJob::open_split(std::uint64_t block_id, Bytes exec_bytes,
                                                     std::uint64_t seed) const {
  return std::make_unique<TableSource>(exec_bytes, seed ^ block_id);
}

std::unique_ptr<mr::Mapper> SortJob::make_mapper() const { return std::make_unique<SortMapper>(); }

}  // namespace bvl::wl
