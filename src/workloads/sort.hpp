// Sort: the paper's I/O-intensive micro-benchmark. The map emits the
// row key unchanged; sorting happens entirely in the map-side
// spill/merge machinery. Matching the paper ("Note that Sort
// benchmark has no reduce phase"), the job is map-only: the merged
// sorted runs are written straight back to HDFS.
#pragma once

#include "mapreduce/api.hpp"

namespace bvl::wl {

class SortJob final : public mr::JobDefinition {
 public:
  std::string name() const override { return "Sort"; }
  std::unique_ptr<mr::SplitSource> open_split(std::uint64_t block_id, Bytes exec_bytes,
                                              std::uint64_t seed) const override;
  std::unique_ptr<mr::Mapper> make_mapper() const override;
  // No reducer: map-only job.
};

}  // namespace bvl::wl
