#include "workloads/registry.hpp"

#include "util/error.hpp"
#include "workloads/fpgrowth.hpp"
#include "workloads/grep.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/naive_bayes.hpp"
#include "workloads/sort.hpp"
#include "workloads/terasort.hpp"
#include "workloads/wordcount.hpp"

namespace bvl::wl {

std::string short_name(WorkloadId id) {
  switch (id) {
    case WorkloadId::kWordCount: return "WC";
    case WorkloadId::kSort: return "ST";
    case WorkloadId::kGrep: return "GP";
    case WorkloadId::kTeraSort: return "TS";
    case WorkloadId::kNaiveBayes: return "NB";
    case WorkloadId::kFpGrowth: return "FP";
    case WorkloadId::kKMeans: return "KM";
  }
  throw Error("short_name: unknown workload");
}

std::string long_name(WorkloadId id) {
  switch (id) {
    case WorkloadId::kWordCount: return "WordCount";
    case WorkloadId::kSort: return "Sort";
    case WorkloadId::kGrep: return "Grep";
    case WorkloadId::kTeraSort: return "TeraSort";
    case WorkloadId::kNaiveBayes: return "NaiveBayes";
    case WorkloadId::kFpGrowth: return "FPGrowth";
    case WorkloadId::kKMeans: return "KMeans";
  }
  throw Error("long_name: unknown workload");
}

std::vector<WorkloadId> all_workloads() {
  return {WorkloadId::kWordCount, WorkloadId::kSort,       WorkloadId::kGrep,
          WorkloadId::kTeraSort,  WorkloadId::kNaiveBayes, WorkloadId::kFpGrowth};
}

std::vector<WorkloadId> micro_benchmarks() {
  return {WorkloadId::kWordCount, WorkloadId::kSort, WorkloadId::kGrep, WorkloadId::kTeraSort};
}

std::vector<WorkloadId> real_world_apps() {
  return {WorkloadId::kNaiveBayes, WorkloadId::kFpGrowth};
}

std::vector<WorkloadId> extension_workloads() { return {WorkloadId::kKMeans}; }

std::unique_ptr<mr::JobDefinition> make_workload(WorkloadId id) {
  switch (id) {
    case WorkloadId::kWordCount: return std::make_unique<WordCountJob>();
    case WorkloadId::kSort: return std::make_unique<SortJob>();
    case WorkloadId::kGrep: return std::make_unique<GrepJob>();
    case WorkloadId::kTeraSort: return std::make_unique<TeraSortJob>();
    case WorkloadId::kNaiveBayes: return std::make_unique<NaiveBayesJob>();
    case WorkloadId::kFpGrowth: return std::make_unique<FpGrowthJob>();
    case WorkloadId::kKMeans: return std::make_unique<KMeansJob>();
  }
  throw Error("make_workload: unknown workload");
}

std::unique_ptr<mr::JobDefinition> make_workload(const std::string& name) {
  for (WorkloadId id : all_workloads()) {
    if (name == short_name(id) || name == long_name(id)) return make_workload(id);
  }
  for (WorkloadId id : extension_workloads()) {
    if (name == short_name(id) || name == long_name(id)) return make_workload(id);
  }
  throw Error("make_workload: unknown workload '" + name + "'");
}

}  // namespace bvl::wl
