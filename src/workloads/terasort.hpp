// TeraSort: scalable sort with a sampled total-order partitioner.
// prepare() samples the input and computes R-1 quantile cut points
// ("uses a sorted list of N-1 sampled keys to define the key range for
// each reduce", Sec. 1.3.1); partition() binary-searches them, so
// concatenating reducer outputs yields a globally sorted dataset — a
// property the tests assert.
#pragma once

#include <string>
#include <vector>

#include "mapreduce/api.hpp"

namespace bvl::wl {

class TeraSortJob final : public mr::JobDefinition {
 public:
  explicit TeraSortJob(int reducers = 4, std::size_t sample_records = 2000);

  std::string name() const override { return "TeraSort"; }
  std::unique_ptr<mr::SplitSource> open_split(std::uint64_t block_id, Bytes exec_bytes,
                                              std::uint64_t seed) const override;
  std::unique_ptr<mr::Mapper> make_mapper() const override;
  std::unique_ptr<mr::Reducer> make_reducer() const override;
  void prepare(Bytes exec_bytes, std::uint64_t seed, mr::WorkCounters& c) override;
  int partition(std::string_view key, int num_reducers) const override;
  int default_reducers() const override { return reducers_; }
  /// The canonical terasort tuning compresses map output.
  bool compress_map_output() const override { return true; }

  const std::vector<std::string>& cut_points() const { return cuts_; }

 private:
  int reducers_;
  std::size_t sample_records_;
  std::vector<std::string> cuts_;
};

}  // namespace bvl::wl
