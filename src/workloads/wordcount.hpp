// WordCount: the paper's CPU-intensive micro-benchmark. Tokenizes
// text, emits (word, 1), combines and reduces by summation.
#pragma once

#include "mapreduce/api.hpp"

namespace bvl::wl {

class WordCountJob final : public mr::JobDefinition {
 public:
  std::string name() const override { return "WordCount"; }
  std::unique_ptr<mr::SplitSource> open_split(std::uint64_t block_id, Bytes exec_bytes,
                                              std::uint64_t seed) const override;
  std::unique_ptr<mr::Mapper> make_mapper() const override;
  std::unique_ptr<mr::Reducer> make_reducer() const override;
  std::unique_ptr<mr::Reducer> make_combiner() const override;
};

/// Integer-sum reducer shared by WordCount, Grep and Naive Bayes.
class SumReducer final : public mr::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values, mr::Emitter& out,
              mr::WorkCounters& c) override;
};

}  // namespace bvl::wl
