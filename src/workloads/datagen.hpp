// Deterministic input-data generators.
//
// The paper's inputs: text corpora (WordCount, Grep), tabular rows
// (Sort), TeraGen output (TeraSort), labeled documents (Naive Bayes /
// Mahout), and transaction baskets (FP-Growth / Mahout). Each
// generator produces the same byte stream for the same (seed, split)
// pair, so every experiment is exactly reproducible. Word frequencies
// are Zipf-distributed — the property that makes WordCount's combiner
// effective and keeps Grep's match rate low.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mapreduce/api.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bvl::wl {

/// Shared synthetic vocabulary: deterministic pseudo-words, index =
/// Zipf rank (0 is the most frequent word).
class Vocabulary {
 public:
  Vocabulary(std::size_t size, std::uint64_t seed);

  const std::string& word(std::size_t rank) const { return words_.at(rank); }
  std::size_t size() const { return words_.size(); }

 private:
  std::vector<std::string> words_;
};

/// Base for generated split sources: subclasses produce one line per
/// next() until the byte target is met. The Record handed out views
/// this source's reusable line buffers (valid until the following
/// next() call), so steady-state record reading performs no heap
/// allocations.
class LineSource : public mr::SplitSource {
 public:
  LineSource(Bytes target_bytes, std::uint64_t seed);

  bool next(mr::Record& rec) final;

 protected:
  /// Appends the next line's bytes to `line` (already cleared).
  virtual void make_line(Pcg32& rng, std::string& line) = 0;

 private:
  Bytes target_;
  Bytes produced_ = 0;
  std::uint64_t line_no_ = 0;
  Pcg32 rng_;
  std::string key_buf_;
  std::string line_buf_;
};

/// Zipf text: lines of `words_per_line` words drawn from a shared
/// vocabulary.
class TextSource final : public LineSource {
 public:
  TextSource(Bytes target_bytes, std::uint64_t seed, std::size_t vocab = 500,
             double zipf_s = 1.05, int words_per_line = 10);

 protected:
  void make_line(Pcg32& rng, std::string& line) override;

 private:
  std::shared_ptr<const Vocabulary> vocab_;
  ZipfSampler zipf_;
  int words_per_line_;
};

/// Tabular rows "key\tpayload" with uniform random keys (Sort input).
class TableSource final : public LineSource {
 public:
  TableSource(Bytes target_bytes, std::uint64_t seed, int key_len = 12, int payload_len = 80);

 protected:
  void make_line(Pcg32& rng, std::string& line) override;

 private:
  int key_len_;
  int payload_len_;
};

/// TeraGen-style rows: 10-byte printable key + fixed filler payload.
class TeraGenSource final : public LineSource {
 public:
  TeraGenSource(Bytes target_bytes, std::uint64_t seed);
  static constexpr int kKeyLen = 10;
  static constexpr int kPayloadLen = 88;

 protected:
  void make_line(Pcg32& rng, std::string& line) override;
};

/// Labeled documents "label\tword word ..." for Naive Bayes. Word
/// distribution is shifted per label so classes are separable.
class LabeledDocSource final : public LineSource {
 public:
  LabeledDocSource(Bytes target_bytes, std::uint64_t seed, int num_labels = 5,
                   std::size_t vocab = 500, int words_per_doc = 14);

  static std::string label_name(int label);

 protected:
  void make_line(Pcg32& rng, std::string& line) override;

 private:
  std::shared_ptr<const Vocabulary> vocab_;
  ZipfSampler zipf_;
  int num_labels_;
  int words_per_doc_;
};

/// Market-basket transactions: space-separated item ids, each basket
/// sorted by global frequency rank (ascending id = descending
/// support), as FP-Growth expects.
class TransactionSource final : public LineSource {
 public:
  TransactionSource(Bytes target_bytes, std::uint64_t seed, std::size_t num_items = 1000,
                    double zipf_s = 1.1, int min_items = 4, int max_items = 14);

 protected:
  void make_line(Pcg32& rng, std::string& line) override;

 private:
  ZipfSampler zipf_;
  int min_items_;
  int max_items_;
};

}  // namespace bvl::wl
