#include "workloads/wordcount.hpp"

#include <charconv>

#include "util/string_util.hpp"
#include "workloads/datagen.hpp"

namespace bvl::wl {

namespace {
class WordCountMapper final : public mr::Mapper {
 public:
  void map(const mr::Record& rec, mr::Emitter& out, mr::WorkCounters& c) override {
    for_each_token(rec.value, [&](std::string_view tok) {
      c.token_ops += 1;
      out.emit(tok, "1");
    });
  }
};
}  // namespace

void SumReducer::reduce(std::string_view key, const std::vector<std::string_view>& values,
                        mr::Emitter& out, mr::WorkCounters& c) {
  long long sum = 0;
  for (const auto& v : values) {
    long long x = 0;
    std::from_chars(v.data(), v.data() + v.size(), x);
    sum += x;
    c.compute_units += 1;
  }
  out.emit(key, std::to_string(sum));
}

std::unique_ptr<mr::SplitSource> WordCountJob::open_split(std::uint64_t block_id, Bytes exec_bytes,
                                                          std::uint64_t seed) const {
  return std::make_unique<TextSource>(exec_bytes, seed ^ block_id);
}

std::unique_ptr<mr::Mapper> WordCountJob::make_mapper() const {
  return std::make_unique<WordCountMapper>();
}

std::unique_ptr<mr::Reducer> WordCountJob::make_reducer() const {
  return std::make_unique<SumReducer>();
}

std::unique_ptr<mr::Reducer> WordCountJob::make_combiner() const {
  return std::make_unique<SumReducer>();
}

}  // namespace bvl::wl
