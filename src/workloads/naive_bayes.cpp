#include "workloads/naive_bayes.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/string_util.hpp"
#include "workloads/datagen.hpp"
#include "workloads/wordcount.hpp"

namespace bvl::wl {

namespace {
class NbMapper final : public mr::Mapper {
 public:
  void map(const mr::Record& rec, mr::Emitter& out, mr::WorkCounters& c) override {
    std::size_t tab = rec.value.find('\t');
    if (tab == std::string_view::npos) return;
    std::string_view body = rec.value.substr(tab + 1);
    // Compose "label|token" keys in a reusable buffer; the emitter
    // copies into the arena before the next emit reuses it.
    key_.assign(rec.value.data(), tab);
    key_ += '|';
    const std::size_t stem = key_.size();
    key_ += NaiveBayesJob::kDocCountKey;
    out.emit(key_, "1");
    for_each_token(body, [&](std::string_view tok) {
      c.token_ops += 1;
      c.compute_units += 1;  // per-feature model update work
      key_.resize(stem);
      key_.append(tok.data(), tok.size());
      out.emit(key_, "1");
    });
  }

 private:
  std::string key_;
};
}  // namespace

std::unique_ptr<mr::SplitSource> NaiveBayesJob::open_split(std::uint64_t block_id,
                                                           Bytes exec_bytes,
                                                           std::uint64_t seed) const {
  return std::make_unique<LabeledDocSource>(exec_bytes, seed ^ block_id);
}

std::unique_ptr<mr::Mapper> NaiveBayesJob::make_mapper() const {
  return std::make_unique<NbMapper>();
}

std::unique_ptr<mr::Reducer> NaiveBayesJob::make_reducer() const {
  return std::make_unique<SumReducer>();
}

std::unique_ptr<mr::Reducer> NaiveBayesJob::make_combiner() const {
  return std::make_unique<SumReducer>();
}

void NaiveBayesModel::add_count(const std::string& key, long long count) {
  std::size_t bar = key.find('|');
  require(bar != std::string::npos, "NaiveBayesModel: key missing label separator");
  std::string label = key.substr(0, bar);
  std::string token = key.substr(bar + 1);
  if (token == NaiveBayesJob::kDocCountKey) {
    label_docs_[label] += count;
  } else {
    counts_[label][token] += count;
    label_tokens_[label] += count;
  }
}

long long NaiveBayesModel::token_count(const std::string& label, const std::string& token) const {
  auto lit = counts_.find(label);
  if (lit == counts_.end()) return 0;
  auto tit = lit->second.find(token);
  return tit == lit->second.end() ? 0 : tit->second;
}

std::string NaiveBayesModel::classify(const std::vector<std::string>& tokens) const {
  require(!label_docs_.empty(), "NaiveBayesModel: empty model");
  long long total_docs = 0;
  for (const auto& [label, docs] : label_docs_) total_docs += docs;

  std::string best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [label, docs] : label_docs_) {
    double score = std::log(static_cast<double>(docs) / static_cast<double>(total_docs));
    auto lt = label_tokens_.find(label);
    double denom = static_cast<double>(lt == label_tokens_.end() ? 0 : lt->second);
    // Laplace smoothing with the label's observed vocabulary size.
    auto ct = counts_.find(label);
    double vocab = ct == counts_.end() ? 1.0 : static_cast<double>(ct->second.size());
    for (const auto& tok : tokens) {
      double n = static_cast<double>(token_count(label, tok));
      score += std::log((n + 1.0) / (denom + vocab));
    }
    if (score > best_score) {
      best_score = score;
      best = label;
    }
  }
  return best;
}

}  // namespace bvl::wl
