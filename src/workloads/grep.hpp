// Grep: extracts user-pattern matches from text and sorts matches by
// frequency — the paper's hybrid (search + sort) micro-benchmark. Map
// scans each line for tokens containing the pattern and emits
// (token, 1); combiner/reducer sum, giving per-match frequencies.
#pragma once

#include <string>

#include "mapreduce/api.hpp"

namespace bvl::wl {

class GrepJob final : public mr::JobDefinition {
 public:
  explicit GrepJob(std::string pattern = "a");

  std::string name() const override { return "Grep"; }
  std::unique_ptr<mr::SplitSource> open_split(std::uint64_t block_id, Bytes exec_bytes,
                                              std::uint64_t seed) const override;
  std::unique_ptr<mr::Mapper> make_mapper() const override;
  std::unique_ptr<mr::Reducer> make_reducer() const override;
  std::unique_ptr<mr::Reducer> make_combiner() const override;

  const std::string& pattern() const { return pattern_; }

 private:
  std::string pattern_;
};

}  // namespace bvl::wl
