// K-Means clustering (one Lloyd iteration per job), an extension
// workload beyond the paper's six: the k-means kernel is the paper's
// own example of an FPGA-accelerated Hadoop application (its ref.
// [9]) and exercises a map phase that is pure floating-point distance
// computation — a different signature corner than the six text/table
// workloads. Map assigns each point to its nearest centroid and emits
// (centroid, point); the reducer averages to produce new centroids.
#pragma once

#include <vector>

#include "mapreduce/api.hpp"

namespace bvl::wl {

class KMeansJob final : public mr::JobDefinition {
 public:
  /// `k` clusters over `dims`-dimensional points; centroids are
  /// seeded deterministically in prepare().
  explicit KMeansJob(int k = 8, int dims = 8);

  std::string name() const override { return "KMeans"; }
  std::unique_ptr<mr::SplitSource> open_split(std::uint64_t block_id, Bytes exec_bytes,
                                              std::uint64_t seed) const override;
  std::unique_ptr<mr::Mapper> make_mapper() const override;
  std::unique_ptr<mr::Reducer> make_reducer() const override;
  std::unique_ptr<mr::Reducer> make_combiner() const override;
  void prepare(Bytes exec_bytes, std::uint64_t seed, mr::WorkCounters& c) override;
  int default_reducers() const override { return 4; }

  int k() const { return k_; }
  int dims() const { return dims_; }
  const std::vector<std::vector<double>>& centroids() const { return centroids_; }

 private:
  int k_;
  int dims_;
  std::vector<std::vector<double>> centroids_;
};

/// Parses "v0 v1 ... v(d-1)" into a point; wrong-arity lines yield an
/// empty vector.
std::vector<double> parse_point(std::string_view line, int dims);

}  // namespace bvl::wl
