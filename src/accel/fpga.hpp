// FPGA map-phase offload model (Sec. 3.4).
//
// The paper does not deploy an FPGA; it models offloading the hotspot
// map phase and sweeps the acceleration rate 1x-100x:
//   t_map_after = time_cpu + time_fpga + time_trans
// where time_cpu is the residual software part, time_fpga the
// offloaded part divided by the acceleration factor, and time_trans
// the CPU<->FPGA transfer at the link rate. We implement the same
// model plus the hotspot analysis that selects the map phase and
// Eq. (1)'s post-acceleration Atom-vs-Xeon speedup ratio.
#pragma once

#include "perf/perf_model.hpp"
#include "util/units.hpp"

namespace bvl::accel {

struct FpgaConfig {
  /// Effective CPU<->FPGA link rate (PCIe Gen2 x4-class by default).
  double link_gbps = 2.0;
  /// Fraction of the map phase's CPU work that maps onto the fabric;
  /// the rest (record readers, framework glue) stays on the CPU.
  double offloadable_fraction = 0.85;
  /// Per-job reconfiguration/DMA setup cost.
  Seconds setup_s = 0.5;
};

struct AccelResult {
  Seconds time_cpu = 0;    ///< residual software map time
  Seconds time_fpga = 0;   ///< fabric execution time
  Seconds time_trans = 0;  ///< CPU<->FPGA transfer time
  Seconds map_after = 0;   ///< accelerated map phase wall time
  Seconds app_after = 0;   ///< whole-application wall time after offload
  double map_speedup = 0;  ///< t_map_before / map_after
};

/// Hotspot share: fraction of total run time spent in the map phase
/// (the paper's criterion for offloading map: "in most of the studied
/// applications, the map function accounts for more than half").
double map_hotspot_fraction(const perf::RunResult& run);

class MapAccelerator {
 public:
  explicit MapAccelerator(FpgaConfig cfg = {});

  /// Applies an `accel_factor`x fabric speedup to the run's map
  /// phase. `transfer_bytes` is the map input+output volume that
  /// crosses the link.
  AccelResult accelerate(const perf::RunResult& run, double accel_factor,
                         double transfer_bytes) const;

  const FpgaConfig& config() const { return cfg_; }

 private:
  FpgaConfig cfg_;
};

/// Eq. (1): (t_atom / t_xeon for the post-acceleration code) divided
/// by (t_atom / t_xeon for the entire unaccelerated application).
/// < 1 means acceleration weakens the case for migrating to Xeon.
double speedup_ratio(const perf::RunResult& atom_run, const perf::RunResult& xeon_run,
                     const AccelResult& atom_acc, const AccelResult& xeon_acc);

}  // namespace bvl::accel
