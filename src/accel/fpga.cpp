#include "accel/fpga.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bvl::accel {

double map_hotspot_fraction(const perf::RunResult& run) {
  Seconds total = run.total_time();
  if (total <= 0) return 0.0;
  return run.map.time / total;
}

MapAccelerator::MapAccelerator(FpgaConfig cfg) : cfg_(cfg) {
  require(cfg_.link_gbps > 0, "MapAccelerator: non-positive link rate");
  require(cfg_.offloadable_fraction > 0 && cfg_.offloadable_fraction <= 1.0,
          "MapAccelerator: offloadable fraction out of (0,1]");
}

AccelResult MapAccelerator::accelerate(const perf::RunResult& run, double accel_factor,
                                       double transfer_bytes) const {
  require(accel_factor >= 1.0, "MapAccelerator: acceleration factor below 1x");
  require(transfer_bytes >= 0.0, "MapAccelerator: negative transfer volume");

  AccelResult r;
  Seconds t_map = run.map.time;
  r.time_cpu = (1.0 - cfg_.offloadable_fraction) * t_map;
  r.time_fpga = cfg_.offloadable_fraction * t_map / accel_factor;
  r.time_trans = cfg_.setup_s + transfer_bytes / (cfg_.link_gbps * 1e9 / 8.0);
  r.map_after = r.time_cpu + r.time_fpga + r.time_trans;
  // Acceleration cannot make the phase slower than leaving it on the
  // CPU; a rational scheduler would decline the offload.
  r.map_after = std::min(r.map_after, t_map);
  r.app_after = r.map_after + run.reduce.time + run.other.time;
  r.map_speedup = t_map > 0 ? t_map / r.map_after : 1.0;
  return r;
}

double speedup_ratio(const perf::RunResult& atom_run, const perf::RunResult& xeon_run,
                     const AccelResult& atom_acc, const AccelResult& xeon_acc) {
  require(xeon_run.total_time() > 0 && xeon_acc.app_after > 0,
          "speedup_ratio: zero Xeon time");
  double before = atom_run.total_time() / xeon_run.total_time();
  double after = atom_acc.app_after / xeon_acc.app_after;
  require(before > 0, "speedup_ratio: zero before-acceleration ratio");
  return after / before;
}

}  // namespace bvl::accel
