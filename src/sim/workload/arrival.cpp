#include "sim/workload/arrival.hpp"

#include <cmath>

#include "util/error.hpp"

namespace bvl::sim {

double DiurnalCurve::factor(Seconds t) const {
  if (amplitude == 0.0) return 1.0;
  constexpr double kTau = 6.283185307179586476925286766559;
  return 1.0 + amplitude * std::cos(kTau * (t - peak_at) / period);
}

ArrivalProcess::ArrivalProcess(double base_rate, DiurnalCurve curve, std::uint64_t seed)
    : base_rate_(base_rate), curve_(curve), rng_(seed, /*stream=*/0x61727276ULL) {
  require(base_rate > 0, "ArrivalProcess: base rate must be positive");
  require(curve.amplitude >= 0 && curve.amplitude <= 1,
          "ArrivalProcess: diurnal amplitude must be in [0, 1]");
  require(curve.period > 0, "ArrivalProcess: diurnal period must be positive");
}

Seconds ArrivalProcess::next_after(Seconds t) {
  // Lewis-Shedler thinning against the constant envelope
  // base_rate * (1 + amplitude) >= rate(s) for all s.
  const double peak = base_rate_ * curve_.peak_factor();
  for (;;) {
    t += rng_.exponential(peak);
    double accept = base_rate_ * curve_.factor(t) / peak;
    if (rng_.next_double() < accept) return t;
  }
}

}  // namespace bvl::sim
