#include "sim/workload/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bvl::sim {

P2Quantile::P2Quantile(double p) : p_(p) {
  require(p > 0 && p < 1, "P2Quantile: p must be in (0, 1)");
  dn_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  // Jain & Chlamtac's piecewise-parabolic (P²) height adjustment.
  return q_[i] + d / (n_[i + 1] - n_[i - 1]) *
                     ((n_[i] - n_[i - 1] + d) * (q_[i + 1] - q_[i]) / (n_[i + 1] - n_[i]) +
                      (n_[i + 1] - n_[i] - d) * (q_[i] - q_[i - 1]) / (n_[i] - n_[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  int j = i + static_cast<int>(d);
  return q_[i] + d * (q_[j] - q_[i]) / (n_[j] - n_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    q_[count_++] = x;
    if (count_ == 5) {
      std::sort(q_.begin(), q_.end());
      for (int i = 0; i < 5; ++i) n_[i] = i + 1;
      np_ = {1.0, 1.0 + 4.0 * dn_[1], 1.0 + 4.0 * dn_[2], 1.0 + 4.0 * dn_[3], 5.0};
    }
    return;
  }
  ++count_;

  int k;  // cell containing x
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = std::max(q_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];

  // Nudge interior markers toward their desired positions, keeping
  // heights monotone (fall back to linear when the parabola would
  // cross a neighbor).
  for (int i = 1; i <= 3; ++i) {
    double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) || (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      double dir = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, dir);
      if (q_[i - 1] < candidate && candidate < q_[i + 1]) {
        q_[i] = candidate;
      } else {
        q_[i] = linear(i, dir);
      }
      n_[i] += dir;
    }
  }
}

double P2Quantile::value() const {
  require(count_ > 0, "P2Quantile: value of empty sketch");
  if (count_ >= 5) return q_[2];
  // Exact small-sample quantile: nearest-rank on the sorted prefix.
  std::array<double, 5> sorted = q_;
  std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
  auto rank = static_cast<std::size_t>(std::ceil(p_ * static_cast<double>(count_)));
  if (rank > 0) --rank;
  return sorted[std::min(rank, count_ - 1)];
}

void LatencySketch::add(double x) {
  p50_.add(x);
  p95_.add(x);
  p99_.add(x);
  sum_ += x;
  max_ = count_ == 0 ? x : std::max(max_, x);
  ++count_;
}

}  // namespace bvl::sim
