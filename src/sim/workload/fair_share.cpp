#include "sim/workload/fair_share.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace bvl::sim {

FairShareQueue::FairShareQueue(std::vector<TenantSpec> tenants) : specs_(std::move(tenants)) {
  require(!specs_.empty(), "FairShareQueue: need at least one tenant");
  for (const auto& t : specs_) {
    require(t.weight > 0, "FairShareQueue: tenant weight must be positive");
    require(t.arrival_share >= 0, "FairShareQueue: arrival share must be non-negative");
  }
  queues_.resize(specs_.size());
  vtime_.assign(specs_.size(), 0.0);
}

void FairShareQueue::enqueue(int tenant, std::uint64_t item) {
  auto t = static_cast<std::size_t>(tenant);
  require(t < specs_.size(), "FairShareQueue: unknown tenant");
  if (queues_[t].empty()) {
    // Idle tenants bank no credit: floor the waking tenant's clock to
    // the least backlogged clock so it resumes fair, not dominant.
    double floor_v = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (!queues_[i].empty()) floor_v = std::min(floor_v, vtime_[i]);
    }
    if (floor_v != std::numeric_limits<double>::infinity()) {
      vtime_[t] = std::max(vtime_[t], floor_v);
    }
  }
  queues_[t].push_back(item);
  ++queued_;
}

std::size_t FairShareQueue::size(int tenant) const {
  return queues_.at(static_cast<std::size_t>(tenant)).size();
}

int FairShareQueue::next_tenant() const {
  std::vector<bool> skip;  // empty = consider everyone
  return next_tenant_excluding(skip);
}

int FairShareQueue::next_tenant_excluding(const std::vector<bool>& skip) const {
  int best = -1;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].empty()) continue;
    if (i < skip.size() && skip[i]) continue;
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    auto b = static_cast<std::size_t>(best);
    if (specs_[i].priority != specs_[b].priority) {
      if (specs_[i].priority > specs_[b].priority) best = static_cast<int>(i);
    } else if (vtime_[i] < vtime_[b]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::uint64_t FairShareQueue::front(int tenant) const {
  const auto& q = queues_.at(static_cast<std::size_t>(tenant));
  require(!q.empty(), "FairShareQueue: front of empty tenant queue");
  return q.front();
}

std::uint64_t FairShareQueue::pop(int tenant) {
  auto& q = queues_.at(static_cast<std::size_t>(tenant));
  require(!q.empty(), "FairShareQueue: pop of empty tenant queue");
  std::uint64_t item = q.front();
  q.pop_front();
  --queued_;
  return item;
}

void FairShareQueue::charge(int tenant, double service) {
  auto t = static_cast<std::size_t>(tenant);
  require(t < specs_.size(), "FairShareQueue: unknown tenant");
  require(service >= 0, "FairShareQueue: negative service charge");
  vtime_[t] += service / specs_[t].weight;
}

double FairShareQueue::virtual_time(int tenant) const {
  return vtime_.at(static_cast<std::size_t>(tenant));
}

}  // namespace bvl::sim
