// Streaming quantile estimation for steady-state latency metrics.
// A service-mode horizon completes tens of thousands of jobs; storing
// every sojourn time to sort at the end would couple memory to the
// horizon length, so the p50/p95/p99 columns come from the P²
// algorithm (Jain & Chlamtac 1985): five markers per tracked quantile,
// adjusted with a piecewise-parabolic fit as observations stream by.
// O(1) memory, O(1) per observation, deterministic — the estimate is
// a pure function of the observation sequence, which is what lets the
// service metrics be byte-compared across runs and thread counts.
// tests/sim/test_queueing_theory.cpp pins the sketch against exact
// sample quantiles on known distributions.
#pragma once

#include <array>
#include <cstddef>

namespace bvl::sim {

/// One tracked quantile p in (0, 1). Exact until five observations
/// arrive (it just sorts them), P²-approximate afterwards.
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void add(double x);

  /// Current estimate of the p-quantile. Requires count() > 0.
  double value() const;

  double p() const { return p_; }
  std::size_t count() const { return count_; }

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double p_;
  std::size_t count_ = 0;
  std::array<double, 5> q_{};   ///< marker heights
  std::array<double, 5> n_{};   ///< marker positions (1-based ranks)
  std::array<double, 5> np_{};  ///< desired positions
  std::array<double, 5> dn_{};  ///< desired-position increments
};

/// The latency summary the service simulation reports: streaming
/// p50/p95/p99 plus mean/min/max, all O(1) memory.
class LatencySketch {
 public:
  LatencySketch() : p50_(0.50), p95_(0.95), p99_(0.99) {}

  void add(double x);

  std::size_t count() const { return p50_.count(); }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double p50() const { return p50_.value(); }
  double p95() const { return p95_.value(); }
  double p99() const { return p99_.value(); }
  double max() const { return max_; }

 private:
  P2Quantile p50_, p95_, p99_;
  double sum_ = 0.0;
  double max_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace bvl::sim
