// Multi-tenant admission for the service simulation: each tenant owns
// a FIFO queue of opaque work items and the scheduler serves tenants
// by strict priority, then start-time-fair weighted sharing within a
// priority class. This is the YARN fair-scheduler shape — queues with
// weights, FIFO within a queue — reduced to the decision the service
// replay actually needs: "whose head-of-line task gets the next slot".
//
// Fairness accounting is virtual-time based (SFQ style): serving a
// tenant charges `service / weight` to its virtual clock, the
// scheduler always picks the backlogged tenant with the smallest
// virtual clock, and a tenant going from idle to backlogged is floored
// to the minimum backlogged clock so an idle spell banks no credit.
// Every decision is deterministic: priority, then virtual time, then
// tenant index.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace bvl::sim {

struct TenantSpec {
  std::string name;
  double weight = 1.0;         ///< fair-share weight within a priority class
  int priority = 0;            ///< higher = served strictly first
  double arrival_share = 1.0;  ///< relative share of the open arrival stream
};

class FairShareQueue {
 public:
  explicit FairShareQueue(std::vector<TenantSpec> tenants);

  int tenants() const { return static_cast<int>(specs_.size()); }
  const TenantSpec& spec(int tenant) const { return specs_.at(static_cast<std::size_t>(tenant)); }

  /// Appends `item` to the tenant's FIFO queue.
  void enqueue(int tenant, std::uint64_t item);

  bool empty() const { return queued_ == 0; }
  std::size_t size() const { return queued_; }
  std::size_t size(int tenant) const;

  /// The tenant whose head item should be served next (highest
  /// priority, then least virtual time, then lowest index), or -1
  /// when every queue is empty. Pure observation — pop() to commit.
  int next_tenant() const;

  /// After `next_tenant`, a scheduler that cannot place that tenant's
  /// head right now needs the runner-up: the same selection restricted
  /// to tenants not in `skip`. Returns -1 when none qualify.
  int next_tenant_excluding(const std::vector<bool>& skip) const;

  std::uint64_t front(int tenant) const;
  std::uint64_t pop(int tenant);

  /// Charges `service` (normalized by the tenant's weight) to the
  /// tenant's virtual clock. Call when an item starts service.
  void charge(int tenant, double service);

  /// Attained service per tenant in virtual (weight-normalized) units;
  /// the fairness differential tests integrate against this.
  double virtual_time(int tenant) const;

 private:
  std::vector<TenantSpec> specs_;
  std::vector<std::deque<std::uint64_t>> queues_;
  std::vector<double> vtime_;
  std::size_t queued_ = 0;
};

}  // namespace bvl::sim
