// Contended resources on the simulation timeline. A node is modeled
// as a fixed pool of task slots (Hadoop's tasktracker maximum) plus
// one shared disk and one NIC, each a serialized FIFO device — the
// same shape PerfModel's closed form assumes, now as queues whose
// waiting is emergent rather than a max()+penalty formula.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_queue.hpp"

namespace bvl::sim {

/// Fixed number of task slots with a FIFO wait queue. Two usage
/// styles:
///   * push — acquire(cb): the callback fires (possibly immediately)
///     when a slot frees, in request order;
///   * pull — try_acquire(): a scheduler polls for a free slot and
///     places work itself (cluster_sim's policy dispatch).
/// Both maintain the busy-time integral used for utilization reports.
class SlotPool {
 public:
  SlotPool(Simulation& sim, int slots);

  /// Requests a slot; `on_granted` runs at the grant time. Grants are
  /// FIFO among waiters.
  void acquire(std::function<void()> on_granted);

  /// Takes a free slot immediately, or returns false. Never jumps the
  /// acquire() wait queue.
  bool try_acquire();

  /// Returns a slot. The oldest waiter (if any) is granted at the
  /// current time, via the event queue so grant order stays FIFO even
  /// across multiple releases at one timestamp.
  void release();

  int slots() const { return slots_; }
  int in_use() const { return in_use_; }
  std::size_t waiting() const { return waiters_.size(); }

  /// Integral of in_use over time up to `now` (slot-seconds).
  Seconds busy_slot_seconds(Seconds now) const;

 private:
  void set_in_use(int n);

  Simulation& sim_;
  int slots_;
  int in_use_ = 0;
  Seconds busy_acc_ = 0;      ///< integral up to last_change_
  Seconds last_change_ = 0;
  std::deque<std::function<void()>> waiters_;
};

/// One serialized device (disk or NIC): a request of `service_s`
/// starts when the device frees and completes service_s later.
/// Requests are FIFO; zero-length requests complete at submit time
/// but still round-trip the event queue so callback order is stable.
class ServiceQueue {
 public:
  explicit ServiceQueue(Simulation& sim) : sim_(sim) {}

  /// Enqueues a request; `on_done` fires at its completion time.
  void submit(Seconds service_s, std::function<void()> on_done);

  /// Earliest time a new request could start service.
  Seconds free_at() const { return free_at_; }

  Seconds busy_s() const { return busy_s_; }
  std::uint64_t requests() const { return requests_; }

 private:
  Simulation& sim_;
  Seconds free_at_ = 0;
  Seconds busy_s_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace bvl::sim
