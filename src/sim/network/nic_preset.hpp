// Calibrated NIC endpoint presets: the line-rate generations the
// fabric can attach to a node, with per-server-class achievable
// efficiency. The paper's testbed is effective-1GbE (117 MB/s line
// calibrated from its measured shuffle rates, scaled by each server's
// network_efficiency), and PR 7 proved that regime can never make the
// spine bind: per-node NICs saturate first. The 10/40 GbE presets
// model endpoint upgrades, where the low-power-Hadoop literature
// (Zheng et al.; Qureshi & Koubaa's SBC clusters) reports the
// inversion this layer exists to express — wimpy cores cannot drive a
// fat NIC at line rate, so their achievable fraction falls with the
// line speed while the *absolute* rate still grows enough to push the
// bottleneck off the endpoints and into the switching layers.
#pragma once

#include <string>

namespace bvl::sim {

enum class NicPresetId {
  /// The paper's effective-1GbE testbed NIC. Identity preset: the
  /// endpoint rate is exactly `base_mbps * 1e6 * network_efficiency`,
  /// the pre-preset expression, so every golden stays byte-identical.
  k1GbE,
  /// 10x line rate; big cores sustain 95% of it, little cores 40%.
  k10GbE,
  /// 40x line rate; big cores sustain 85% of it, little cores 20%.
  k40GbE,
};

/// One calibrated preset. `big_eff`/`little_eff` anchor a linear
/// interpolation over the server's configured 1GbE network_efficiency
/// (1.0 = big/Xeon-class, 0.7 = little/Atom-class): classes in
/// between get a proportionally blended achievable fraction.
struct NicPreset {
  NicPresetId id = NicPresetId::k1GbE;
  const char* name = "1GbE";
  double line_multiple = 1.0;  ///< line rate as a multiple of the 1GbE base
  double big_eff = 1.0;        ///< achievable fraction at network_efficiency 1.0
  double little_eff = 0.7;     ///< achievable fraction at network_efficiency 0.7

  /// Endpoint rate in bytes/s for a server whose calibrated 1GbE
  /// effective line rate is `base_mbps` MB/s and whose 1GbE
  /// achievable fraction is `network_efficiency`. k1GbE reproduces
  /// the historical expression bit for bit.
  double endpoint_bytes_per_s(double base_mbps, double network_efficiency) const;

  /// Throws util::Error on non-positive line rate or efficiencies.
  void validate() const;
};

/// The calibrated preset table entry for `id`.
const NicPreset& nic_preset(NicPresetId id);

std::string to_string(NicPresetId id);

}  // namespace bvl::sim
