#include "sim/network/nic_preset.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bvl::sim {

namespace {

// The interpolation anchors: where the configured per-server 1GbE
// network_efficiency values sit for the paper's two classes.
constexpr double kBigAnchor = 1.0;
constexpr double kLittleAnchor = 0.7;

constexpr NicPreset kPresets[] = {
    {NicPresetId::k1GbE, "1GbE", 1.0, 1.0, 0.7},
    {NicPresetId::k10GbE, "10GbE", 10.0, 0.95, 0.40},
    {NicPresetId::k40GbE, "40GbE", 40.0, 0.85, 0.20},
};

}  // namespace

double NicPreset::endpoint_bytes_per_s(double base_mbps, double network_efficiency) const {
  require(base_mbps > 0, "NicPreset: base line rate must be positive");
  require(network_efficiency > 0, "NicPreset: network efficiency must be positive");
  if (id == NicPresetId::k1GbE) {
    // Identity preset: the exact historical expression, so default
    // fabric runs stay byte-identical to the pre-preset goldens.
    return base_mbps * 1e6 * network_efficiency;
  }
  // Blend the achievable fraction by where this server's 1GbE
  // efficiency sits between the little and big anchors, clamped so
  // exotic configs outside [0.7, 1.0] don't extrapolate.
  double t = std::clamp((network_efficiency - kLittleAnchor) / (kBigAnchor - kLittleAnchor),
                        0.0, 1.0);
  double eff = little_eff + (big_eff - little_eff) * t;
  return base_mbps * line_multiple * 1e6 * eff;
}

void NicPreset::validate() const {
  require(line_multiple > 0, "NicPreset: line rate multiple must be positive");
  require(big_eff > 0 && big_eff <= 1.0, "NicPreset: big_eff must be in (0, 1]");
  require(little_eff > 0 && little_eff <= big_eff,
          "NicPreset: little_eff must be in (0, big_eff]");
}

const NicPreset& nic_preset(NicPresetId id) {
  for (const NicPreset& p : kPresets) {
    if (p.id == id) return p;
  }
  throw Error("nic_preset: unknown preset id");
}

std::string to_string(NicPresetId id) { return nic_preset(id).name; }

}  // namespace bvl::sim
