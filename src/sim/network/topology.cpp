#include "sim/network/topology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bvl::sim {

int Topology::racks() const {
  int max_rack = -1;
  for (int r : rack_of) max_rack = std::max(max_rack, r);
  return max_rack + 1;
}

void Topology::validate() const {
  require(!rack_of.empty(), "Topology: no nodes");
  require(tor_oversub >= 0, "Topology: negative tor_oversub");
  require(spine_oversub >= 0, "Topology: negative spine_oversub");
  require(spine_multipath >= 1, "Topology: spine_multipath must be >= 1");
  const int nracks = racks();
  require(spine_multipath == 1 || (nracks > 1 && spine_oversub > 0),
          "Topology: spine_multipath > 1 needs a modeled spine "
          "(more than one rack, spine_oversub > 0)");
  std::vector<bool> seen(static_cast<std::size_t>(nracks), false);
  for (int r : rack_of) {
    require(r >= 0, "Topology: negative rack id");
    seen[static_cast<std::size_t>(r)] = true;
  }
  for (int r = 0; r < nracks; ++r) {
    require(seen[static_cast<std::size_t>(r)], "Topology: rack ids must be contiguous");
  }
}

Topology Topology::single_rack(int nodes) {
  require(nodes >= 1, "Topology: need at least one node");
  Topology t;
  t.rack_of.assign(static_cast<std::size_t>(nodes), 0);
  return t;
}

Topology Topology::uniform(int racks, int nodes_per_rack, double spine_oversub,
                           double tor_oversub) {
  require(racks >= 1 && nodes_per_rack >= 1, "Topology: need >= 1 rack of >= 1 node");
  Topology t;
  t.spine_oversub = spine_oversub;
  t.tor_oversub = tor_oversub;
  t.rack_of.reserve(static_cast<std::size_t>(racks) * static_cast<std::size_t>(nodes_per_rack));
  for (int r = 0; r < racks; ++r) {
    for (int n = 0; n < nodes_per_rack; ++n) t.rack_of.push_back(r);
  }
  return t;
}

}  // namespace bvl::sim
