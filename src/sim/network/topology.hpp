// Datacenter fabric description: which rack each node lives in and how
// oversubscribed the switching layers are. The Topology is pure data —
// sim/network/fabric.hpp turns it into per-link ServiceQueues on the
// discrete-event kernel — so the same description can parameterize the
// single-node pricer replay, the batch rack mix and the open-stream
// service simulation.
//
// Capacity model (classic leaf-spine accounting):
//   * every node owns a full-duplex NIC — one egress and one ingress
//     link at the node's own line rate;
//   * each rack's ToR switch fabric carries every flow that enters or
//     leaves one of its hosts, at (sum of member NIC rates) /
//     tor_oversub;
//   * one spine interconnects the ToRs; only rack-crossing flows
//     traverse it, at (sum of all NIC rates) / spine_oversub. A
//     spine_oversub of 8 is the "8:1 oversubscribed core" of datacenter
//     practice: hosts can collectively inject 8x what the core carries.
// An oversubscription factor of 0 means "non-blocking": the layer is
// dropped from every path instead of being modeled at infinite rate.
#pragma once

#include <vector>

#include "sim/network/nic_preset.hpp"

namespace bvl::sim {

struct Topology {
  /// rack_of[node] = rack index. Rack ids must be 0-based and
  /// contiguous; node order matches the flat node order of whatever
  /// rack the fabric is attached to.
  std::vector<int> rack_of;
  /// Host-aggregate : ToR-fabric capacity ratio (>= 0; 0 = non-blocking).
  double tor_oversub = 1.0;
  /// ToR-aggregate : spine capacity ratio (>= 0; 0 = non-blocking).
  double spine_oversub = 1.0;
  /// ECMP-style spine multipath: the spine's capacity is split across
  /// this many parallel links and each rack-crossing flow is pinned to
  /// one of them by a deterministic flow hash. 1 (the default) is the
  /// historical single-path spine, bit for bit. Values > 1 require a
  /// modeled spine (more than one rack, spine_oversub > 0) — a
  /// multipath non-blocking layer is a contradiction validate()
  /// rejects rather than silently ignores.
  int spine_multipath = 1;

  int nodes() const { return static_cast<int>(rack_of.size()); }
  int racks() const;

  /// Throws util::Error on non-contiguous rack ids or negative factors.
  void validate() const;

  /// All nodes in one rack: no spine traffic is possible.
  static Topology single_rack(int nodes);
  /// `racks` racks of `nodes_per_rack` nodes each, filled in node order.
  static Topology uniform(int racks, int nodes_per_rack, double spine_oversub = 1.0,
                          double tor_oversub = 1.0);
};

/// The knob every pricing layer takes. The default — modeled = false —
/// is the infinite fabric: shuffle is charged only at the destination
/// node's NIC, exactly the per-task analytic term the closed-form
/// model prices, so every golden stays byte-identical. Turning
/// `modeled` on replays shuffle flows through the Topology's links and
/// lets rack placement, job splitting and co-located tenants contend.
struct FabricOptions {
  bool modeled = false;
  /// Used when modeled. An empty rack_of means "one rack spanning all
  /// nodes of the attached rack" (no spine, ToR at tor_oversub).
  Topology topology;
  /// Endpoint NIC generation (sim/network/nic_preset.hpp). The
  /// default k1GbE reproduces the historical per-node rate expression
  /// bit for bit; 10/40 GbE raise the endpoint line rate with
  /// per-server-class achievable fractions. Consulted by every layer
  /// that derives NIC rates from a ClusterConfig (EventPricer,
  /// simulate_mix, simulate_service) whether or not `modeled` links
  /// are replayed.
  NicPresetId nic_preset = NicPresetId::k1GbE;
};

}  // namespace bvl::sim
