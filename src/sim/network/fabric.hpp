// Modeled datacenter fabric on the discrete-event kernel: every link
// of the Topology — per-node NIC egress/ingress, per-rack ToR fabric,
// the spine — is one sim::ServiceQueue, and a flow occupies each link
// on its path for bytes/rate seconds, FIFO behind whatever traffic is
// already queued there.
//
// Flow timing contract (the one the differential suite pins): a flow's
// links are claimed simultaneously at send() time and the flow is
// delivered when the LAST link finishes serving it — the pipelined
// (cut-through) approximation, so an uncontended flow completes in
// max-over-hops(bytes/rate), the bottleneck-link closed form, rather
// than the store-and-forward sum. Contention is per link: each
// ServiceQueue serializes its own backlog, so a saturated spine delays
// exactly the flows that traverse it.
//
// Routing contract: EVERY flow pays the destination node's ingress NIC
// for its full byte count — including node-local flows. That is
// deliberate: the analytic model (and the paper's measurement it was
// calibrated on) charges a task's whole shuffle volume at the NIC, so
// the destination-ingress demand of a modeled replay always sums to
// the analytic NIC term exactly, and the modeled fabric can only ADD
// time (source egress, ToR, spine queueing) on top of the closed
// form's floor — never undercut it. Remote flows additionally traverse
// src egress -> src ToR [-> spine -> dst ToR] -> dst ingress.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network/topology.hpp"
#include "sim/resource.hpp"

namespace bvl::sim {

/// Flow-conservation ledger plus the traffic split by how far each
/// flow travelled. `spine_utilization` is left 0 by the fabric itself
/// (it has no notion of a measurement window); callers that know the
/// makespan fill it as spine_busy_s / window.
struct FabricStats {
  bool modeled = false;         ///< false: the infinite-fabric default ran
  std::uint64_t flows = 0;
  double bytes_injected = 0;    ///< counted at send()
  double bytes_delivered = 0;   ///< counted when the last link finishes
  double local_bytes = 0;       ///< src == dst (never left the node)
  double intra_rack_bytes = 0;  ///< crossed the ToR, not the spine
  double cross_rack_bytes = 0;  ///< traversed the spine
  Seconds spine_busy_s = 0;
  double spine_utilization = 0;
};

class Fabric {
 public:
  /// `nic_bytes_per_s[i]` is node i's NIC line rate; must match the
  /// topology's node count. ToR/spine capacities derive from the NIC
  /// aggregates (see topology.hpp).
  Fabric(Simulation& sim, Topology topo, std::vector<double> nic_bytes_per_s);

  /// Replays one flow of `bytes` from node `src` to node `dst`;
  /// `on_delivered` fires when its last link finishes. Zero-byte flows
  /// still round-trip the event queue (via the ingress link) so
  /// callback order stays deterministic.
  void send(int src, int dst, double bytes, std::function<void()> on_delivered);

  /// Completion time of this flow on an idle fabric: the bottleneck-
  /// link closed form max-over-hops(bytes/rate).
  Seconds ideal_flow_s(int src, int dst, double bytes) const;

  const Topology& topology() const { return topo_; }
  double nic_rate(int node) const { return nic_rate_[static_cast<std::size_t>(node)]; }
  /// Spine capacity in bytes/s; 0 when the spine is non-blocking or
  /// the topology has a single rack.
  double spine_rate() const { return spine_rate_; }

  ServiceQueue& ingress(int node) { return *ingress_[static_cast<std::size_t>(node)]; }
  const ServiceQueue& ingress(int node) const { return *ingress_[static_cast<std::size_t>(node)]; }
  ServiceQueue& egress(int node) { return *egress_[static_cast<std::size_t>(node)]; }
  ServiceQueue& tor(int rack) { return *tor_[static_cast<std::size_t>(rack)]; }
  bool has_spine() const { return spine_ != nullptr; }
  ServiceQueue& spine() { return *spine_; }

  /// Conservation ledger; spine_busy_s is folded in, spine_utilization
  /// stays 0 (the caller owns the window).
  FabricStats stats() const;

 private:
  Simulation& sim_;
  Topology topo_;
  std::vector<double> nic_rate_;
  std::vector<double> tor_rate_;   ///< per rack; 0 = non-blocking
  double spine_rate_ = 0;          ///< 0 = non-blocking / single rack
  std::vector<std::unique_ptr<ServiceQueue>> egress_;
  std::vector<std::unique_ptr<ServiceQueue>> ingress_;
  std::vector<std::unique_ptr<ServiceQueue>> tor_;
  std::unique_ptr<ServiceQueue> spine_;
  FabricStats stats_;
};

/// Decomposes one reducer's shuffle into per-source flows and replays
/// them through the fabric. The per-task records carry only the total
/// shuffle volume (SimTask::net_bytes); the router splits it across
/// the nodes that produced the map outputs, weighted by how many of
/// the job's map tasks each node ran — the same proportional-fetch
/// assumption Hadoop's copier makes when every map output is the same
/// size.
class FlowRouter {
 public:
  explicit FlowRouter(Fabric& fabric) : fabric_(fabric) {}

  /// Sends bytes * weight/total from every (node, weight) source to
  /// `dst`; `on_done` fires when the last flow lands. Non-positive
  /// weights are skipped; with no usable source (a map task's HDFS
  /// read, a map-less job) the whole volume is one local flow — which
  /// still pays dst's ingress NIC, per the routing contract above.
  void shuffle(int dst, const std::vector<std::pair<int, double>>& sources, double bytes,
               std::function<void()> on_done);

  Fabric& fabric() { return fabric_; }

 private:
  Fabric& fabric_;
};

}  // namespace bvl::sim
