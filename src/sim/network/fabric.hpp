// Modeled datacenter fabric on the discrete-event kernel: every link
// of the Topology — per-node NIC egress/ingress, per-rack ToR fabric,
// the spine — is one sim::ServiceQueue, and a flow occupies each link
// on its path for bytes/rate seconds, FIFO behind whatever traffic is
// already queued there.
//
// Flow timing contract (the one the differential suite pins): a flow's
// links are claimed simultaneously at send() time and the flow is
// delivered when the LAST link finishes serving it — the pipelined
// (cut-through) approximation, so an uncontended flow completes in
// max-over-hops(bytes/rate), the bottleneck-link closed form, rather
// than the store-and-forward sum. Contention is per link: each
// ServiceQueue serializes its own backlog, so a saturated spine delays
// exactly the flows that traverse it.
//
// Routing contract: EVERY flow pays the destination node's ingress NIC
// for its full byte count — including node-local flows. That is
// deliberate: the analytic model (and the paper's measurement it was
// calibrated on) charges a task's whole shuffle volume at the NIC, so
// the destination-ingress demand of a modeled replay always sums to
// the analytic NIC term exactly, and the modeled fabric can only ADD
// time (source egress, ToR, spine queueing) on top of the closed
// form's floor — never undercut it. Remote flows additionally traverse
// src egress -> src ToR [-> spine -> dst ToR] -> dst ingress.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network/topology.hpp"
#include "sim/resource.hpp"

namespace bvl::sim {

/// Flow-conservation ledger plus the traffic split by how far each
/// flow travelled. `spine_utilization` is left 0 by the fabric itself
/// (it has no notion of a measurement window); callers that know the
/// makespan fill it as spine_busy_s / window.
struct FabricStats {
  bool modeled = false;         ///< false: the infinite-fabric default ran
  std::uint64_t flows = 0;
  double bytes_injected = 0;    ///< counted at send()
  double bytes_delivered = 0;   ///< counted when the last link finishes
  double local_bytes = 0;       ///< src == dst (never left the node)
  double intra_rack_bytes = 0;  ///< crossed the ToR, not the spine
  double cross_rack_bytes = 0;  ///< traversed the spine
  Seconds spine_busy_s = 0;     ///< summed over every ECMP spine link
  double spine_utilization = 0;
  int spine_links = 0;          ///< ECMP width (0: no spine was modeled)
  /// Bytes each ECMP spine link carried — the per-link half of the
  /// conservation ledger: these sum to cross_rack_bytes.
  std::vector<double> spine_link_bytes;
};

class Fabric {
 public:
  /// `nic_bytes_per_s[i]` is node i's NIC line rate; must match the
  /// topology's node count. ToR/spine capacities derive from the NIC
  /// aggregates (see topology.hpp).
  Fabric(Simulation& sim, Topology topo, std::vector<double> nic_bytes_per_s);

  /// Replays one flow of `bytes` from node `src` to node `dst`;
  /// `on_delivered` fires when its last link finishes. Zero-byte flows
  /// still round-trip the event queue (via the ingress link) so
  /// callback order stays deterministic.
  void send(int src, int dst, double bytes, std::function<void()> on_delivered);

  /// Completion time of this flow on an idle fabric: the bottleneck-
  /// link closed form max-over-hops(bytes/rate).
  Seconds ideal_flow_s(int src, int dst, double bytes) const;

  const Topology& topology() const { return topo_; }
  int rack_of(int node) const { return topo_.rack_of[static_cast<std::size_t>(node)]; }
  double nic_rate(int node) const { return nic_rate_[static_cast<std::size_t>(node)]; }
  /// ToR fabric capacity of one rack in bytes/s; 0 = non-blocking.
  double tor_rate(int rack) const { return tor_rate_[static_cast<std::size_t>(rack)]; }
  /// Total spine capacity in bytes/s (all ECMP links together); 0
  /// when the spine is non-blocking or the topology has a single rack.
  double spine_rate() const { return spine_rate_; }
  /// Capacity of one ECMP spine link: spine_rate / spine_multipath.
  double spine_link_rate() const { return spine_link_rate_; }

  ServiceQueue& ingress(int node) { return *ingress_[static_cast<std::size_t>(node)]; }
  const ServiceQueue& ingress(int node) const { return *ingress_[static_cast<std::size_t>(node)]; }
  ServiceQueue& egress(int node) { return *egress_[static_cast<std::size_t>(node)]; }
  ServiceQueue& tor(int rack) { return *tor_[static_cast<std::size_t>(rack)]; }
  bool has_spine() const { return !spine_.empty(); }
  int spine_links() const { return static_cast<int>(spine_.size()); }
  /// The first ECMP link — THE spine under the historical single-path
  /// (spine_multipath = 1) configuration the differential suite pins.
  ServiceQueue& spine() { return *spine_.front(); }
  ServiceQueue& spine_link(int link) { return *spine_[static_cast<std::size_t>(link)]; }
  const ServiceQueue& spine_link(int link) const {
    return *spine_[static_cast<std::size_t>(link)];
  }
  /// Soonest time any ECMP spine link frees up — the live-backlog
  /// signal locality-aware placement reads (now when no spine).
  Seconds earliest_spine_free_at() const;

  /// Deterministic ECMP link choice: a SplitMix64-finalized hash of
  /// (src, dst, per-pair flow sequence number) mod `links`. Pure and
  /// static so the differential reference and the fabric route flows
  /// with one function; with links = 1 it is always 0.
  static int spine_link_of(int src, int dst, std::uint64_t seq, int links);

  /// Conservation ledger; spine_busy_s is folded in, spine_utilization
  /// stays 0 (the caller owns the window).
  FabricStats stats() const;

 private:
  Simulation& sim_;
  Topology topo_;
  std::vector<double> nic_rate_;
  std::vector<double> tor_rate_;   ///< per rack; 0 = non-blocking
  double spine_rate_ = 0;          ///< 0 = non-blocking / single rack
  double spine_link_rate_ = 0;     ///< spine_rate_ / spine_multipath
  std::vector<std::unique_ptr<ServiceQueue>> egress_;
  std::vector<std::unique_ptr<ServiceQueue>> ingress_;
  std::vector<std::unique_ptr<ServiceQueue>> tor_;
  /// ECMP spine links (empty = no spine modeled); size is the
  /// topology's spine_multipath.
  std::vector<std::unique_ptr<ServiceQueue>> spine_;
  std::vector<double> spine_link_bytes_;  ///< per-link ledger
  /// Per-(src, dst) flow sequence counters feeding the ECMP hash —
  /// keyed src * nodes + dst, grown on demand.
  std::unordered_map<std::uint64_t, std::uint64_t> pair_seq_;
  FabricStats stats_;
};

/// Decomposes one reducer's shuffle into per-source flows and replays
/// them through the fabric. The per-task records carry only the total
/// shuffle volume (SimTask::net_bytes); the router splits it across
/// the nodes that produced the map outputs, weighted by how many of
/// the job's map tasks each node ran — the same proportional-fetch
/// assumption Hadoop's copier makes when every map output is the same
/// size.
class FlowRouter {
 public:
  explicit FlowRouter(Fabric& fabric) : fabric_(fabric) {}

  /// Sends bytes * weight/total from every (node, weight) source to
  /// `dst`; `on_done` fires when the last flow lands. Non-positive
  /// weights are skipped; with no usable source (a map task's HDFS
  /// read, a map-less job) the whole volume is one local flow — which
  /// still pays dst's ingress NIC, per the routing contract above.
  void shuffle(int dst, const std::vector<std::pair<int, double>>& sources, double bytes,
               std::function<void()> on_done);

  Fabric& fabric() { return fabric_; }

 private:
  Fabric& fabric_;
};

}  // namespace bvl::sim
