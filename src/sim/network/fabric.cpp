#include "sim/network/fabric.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/error.hpp"

namespace bvl::sim {

Fabric::Fabric(Simulation& sim, Topology topo, std::vector<double> nic_bytes_per_s)
    : sim_(sim), topo_(std::move(topo)), nic_rate_(std::move(nic_bytes_per_s)) {
  topo_.validate();
  require(static_cast<int>(nic_rate_.size()) == topo_.nodes(),
          "Fabric: nic rate count != topology node count");
  for (double r : nic_rate_) require(r > 0, "Fabric: NIC rate must be positive");
  stats_.modeled = true;

  const int nracks = topo_.racks();
  tor_rate_.assign(static_cast<std::size_t>(nracks), 0.0);
  double total_rate = 0;
  for (int n = 0; n < topo_.nodes(); ++n) {
    double r = nic_rate_[static_cast<std::size_t>(n)];
    tor_rate_[static_cast<std::size_t>(topo_.rack_of[static_cast<std::size_t>(n)])] += r;
    total_rate += r;
    egress_.push_back(std::make_unique<ServiceQueue>(sim_));
    ingress_.push_back(std::make_unique<ServiceQueue>(sim_));
  }
  for (int r = 0; r < nracks; ++r) {
    if (topo_.tor_oversub > 0) {
      tor_rate_[static_cast<std::size_t>(r)] /= topo_.tor_oversub;
    } else {
      tor_rate_[static_cast<std::size_t>(r)] = 0;  // non-blocking
    }
    tor_.push_back(std::make_unique<ServiceQueue>(sim_));
  }
  if (nracks > 1 && topo_.spine_oversub > 0) {
    spine_rate_ = total_rate / topo_.spine_oversub;
    // ECMP: the spine's capacity is split evenly across k parallel
    // links; each rack-crossing flow is pinned to one by the flow
    // hash. k = 1 (division by 1.0 is exact) is the historical
    // single-path spine, bit for bit.
    const int k = topo_.spine_multipath;
    spine_link_rate_ = spine_rate_ / static_cast<double>(k);
    for (int link = 0; link < k; ++link) spine_.push_back(std::make_unique<ServiceQueue>(sim_));
    spine_link_bytes_.assign(static_cast<std::size_t>(k), 0.0);
  }
}

Seconds Fabric::earliest_spine_free_at() const {
  if (spine_.empty()) return sim_.now();
  Seconds earliest = spine_.front()->free_at();
  for (std::size_t link = 1; link < spine_.size(); ++link) {
    earliest = std::min(earliest, spine_[link]->free_at());
  }
  return earliest;
}

int Fabric::spine_link_of(int src, int dst, std::uint64_t seq, int links) {
  // SplitMix64 finalizer over a (src, dst, seq) packing: consecutive
  // flows of one (src, dst) pair spray across links deterministically,
  // so a rerun (or a different exec_threads) routes every flow the
  // same way — the replay timeline is single-threaded.
  std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 42) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 21) ^ seq;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(links));
}

namespace {

/// One hop of a flow's path: the queue it waits on and its service
/// demand there (rate 0 marks a non-blocking layer — skipped).
struct Hop {
  ServiceQueue* link = nullptr;
  double rate = 0;
};

}  // namespace

void Fabric::send(int src, int dst, double bytes, std::function<void()> on_delivered) {
  require(src >= 0 && src < topo_.nodes(), "Fabric: bad source node");
  require(dst >= 0 && dst < topo_.nodes(), "Fabric: bad destination node");
  require(bytes >= 0, "Fabric: negative flow size");
  require(static_cast<bool>(on_delivered), "Fabric: null delivery callback");

  const int src_rack = topo_.rack_of[static_cast<std::size_t>(src)];
  const int dst_rack = topo_.rack_of[static_cast<std::size_t>(dst)];

  // Path assembly. The destination ingress NIC is ALWAYS on the path —
  // including src == dst — so modeled ingress demand sums exactly to
  // the analytic NIC term (see the routing contract in the header).
  Hop hops[5];
  int nhops = 0;
  if (src != dst) {
    hops[nhops++] = {egress_[static_cast<std::size_t>(src)].get(),
                     nic_rate_[static_cast<std::size_t>(src)]};
    hops[nhops++] = {tor_[static_cast<std::size_t>(src_rack)].get(),
                     tor_rate_[static_cast<std::size_t>(src_rack)]};
    if (src_rack != dst_rack) {
      if (!spine_.empty()) {
        const std::uint64_t pair =
            static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(topo_.nodes()) +
            static_cast<std::uint64_t>(dst);
        const int link = spine_link_of(src, dst, pair_seq_[pair]++, spine_links());
        spine_link_bytes_[static_cast<std::size_t>(link)] += bytes;
        hops[nhops++] = {spine_[static_cast<std::size_t>(link)].get(), spine_link_rate_};
      }
      hops[nhops++] = {tor_[static_cast<std::size_t>(dst_rack)].get(),
                       tor_rate_[static_cast<std::size_t>(dst_rack)]};
    }
  }
  hops[nhops++] = {ingress_[static_cast<std::size_t>(dst)].get(),
                   nic_rate_[static_cast<std::size_t>(dst)]};

  ++stats_.flows;
  stats_.bytes_injected += bytes;
  if (src == dst) {
    stats_.local_bytes += bytes;
  } else if (src_rack == dst_rack) {
    stats_.intra_rack_bytes += bytes;
  } else {
    stats_.cross_rack_bytes += bytes;
  }

  // Claim every finite link now; deliver when the last one finishes.
  // Submission order is path order (egress outward), and because
  // ServiceQueue::submit reserves its start slot synchronously, two
  // flows sent back-to-back contend FIFO on every shared link.
  auto remaining = std::make_shared<int>(0);
  for (int h = 0; h < nhops; ++h) {
    if (hops[h].rate > 0) ++*remaining;
  }
  auto part_done = [this, bytes, remaining, on_delivered = std::move(on_delivered)] {
    if (--*remaining > 0) return;
    stats_.bytes_delivered += bytes;
    on_delivered();
  };
  if (*remaining == 0) {
    // Every layer non-blocking (only possible with all-zero oversubs
    // and... never for the NIC, which is always finite). Defensive:
    // still deliver through the event queue for stable ordering.
    stats_.bytes_delivered += bytes;
    sim_.in(0, std::move(on_delivered));
    return;
  }
  for (int h = 0; h < nhops; ++h) {
    if (hops[h].rate > 0) hops[h].link->submit(bytes / hops[h].rate, part_done);
  }
}

Seconds Fabric::ideal_flow_s(int src, int dst, double bytes) const {
  require(src >= 0 && src < topo_.nodes(), "Fabric: bad source node");
  require(dst >= 0 && dst < topo_.nodes(), "Fabric: bad destination node");
  double min_rate = nic_rate_[static_cast<std::size_t>(dst)];
  if (src != dst) {
    min_rate = std::min(min_rate, nic_rate_[static_cast<std::size_t>(src)]);
    const int sr = topo_.rack_of[static_cast<std::size_t>(src)];
    const int dr = topo_.rack_of[static_cast<std::size_t>(dst)];
    if (tor_rate_[static_cast<std::size_t>(sr)] > 0) {
      min_rate = std::min(min_rate, tor_rate_[static_cast<std::size_t>(sr)]);
    }
    if (sr != dr) {
      // A flow rides exactly one ECMP link, so the idle-fabric floor
      // sees the per-link rate (== spine_rate_ when single-path).
      if (spine_link_rate_ > 0) min_rate = std::min(min_rate, spine_link_rate_);
      if (tor_rate_[static_cast<std::size_t>(dr)] > 0) {
        min_rate = std::min(min_rate, tor_rate_[static_cast<std::size_t>(dr)]);
      }
    }
  }
  return bytes / min_rate;
}

FabricStats Fabric::stats() const {
  FabricStats s = stats_;
  s.spine_links = spine_links();
  s.spine_link_bytes = spine_link_bytes_;
  for (const auto& link : spine_) s.spine_busy_s += link->busy_s();
  return s;
}

void FlowRouter::shuffle(int dst, const std::vector<std::pair<int, double>>& sources,
                         double bytes, std::function<void()> on_done) {
  require(static_cast<bool>(on_done), "FlowRouter: null completion callback");
  double total = 0;
  for (const auto& [node, weight] : sources) {
    if (weight > 0) total += weight;
  }
  if (total <= 0) {
    fabric_.send(dst, dst, bytes, std::move(on_done));
    return;
  }
  auto remaining = std::make_shared<int>(0);
  for (const auto& [node, weight] : sources) {
    if (weight > 0) ++*remaining;
  }
  auto flow_done = [remaining, on_done = std::move(on_done)] {
    if (--*remaining > 0) return;
    on_done();
  };
  for (const auto& [node, weight] : sources) {
    if (weight <= 0) continue;
    fabric_.send(node, dst, bytes * (weight / total), flow_done);
  }
}

}  // namespace bvl::sim
