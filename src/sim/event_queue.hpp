// Discrete-event simulation kernel: a clock and a binary-heap event
// queue. Everything time-shaped in the repo — per-task phase replay
// (perf/pricer), the multi-job rack mix (core/cluster_sim) — runs on
// this one timeline, so wave shapes, slot contention, map/shuffle
// overlap, and straggler stretch emerge from event ordering instead of
// being scalar corrections bolted onto a closed form.
//
// Determinism: events at equal timestamps fire in submission order
// (a monotone sequence number breaks heap ties), so a replay is a pure
// function of its inputs — same trace, same schedule, bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/units.hpp"

namespace bvl::sim {

/// Monotone simulated time. The queue owns advancement; user code only
/// reads `now()`.
class SimClock {
 public:
  Seconds now() const { return now_; }

  /// Moves time forward. Rejects travel into the past — an event
  /// scheduled before `now()` is a bug in the caller, not a policy.
  void advance_to(Seconds t);

 private:
  Seconds now_ = 0;
};

/// Min-heap of (time, seq, callback). `seq` is the insertion order and
/// breaks timestamp ties FIFO.
class EventQueue {
 public:
  void push(Seconds time, std::function<void()> fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Only valid when !empty().
  Seconds next_time() const;

  /// Pops the earliest event, advances `clock` to its timestamp, and
  /// runs its callback (which may push further events).
  void run_next(SimClock& clock);

 private:
  struct Entry {
    Seconds time = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  /// std::*_heap comparator: a max-heap under "later-than" keeps the
  /// earliest (time, seq) at the front.
  static bool later(const Entry& a, const Entry& b);

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Clock + queue + run loop: the object a replay drives.
class Simulation {
 public:
  Seconds now() const { return clock_.now(); }

  /// Schedules `fn` at absolute time `t` (>= now()).
  void at(Seconds t, std::function<void()> fn);

  /// Schedules `fn` at now() + delay (delay >= 0).
  void in(Seconds delay, std::function<void()> fn);

  /// Runs events in (time, submission) order until the queue drains.
  void run();

  std::uint64_t events_run() const { return events_run_; }

 private:
  SimClock clock_;
  EventQueue queue_;
  std::uint64_t events_run_ = 0;
};

}  // namespace bvl::sim
