// Discrete-event simulation kernel: a clock and a 4-ary-heap event
// queue with lazy deletion. Everything time-shaped in the repo —
// per-task phase replay (perf/pricer), the multi-job rack mix and the
// open job-stream service simulation (core/cluster_sim) — runs on
// this one timeline, so wave shapes, slot contention, map/shuffle
// overlap, and straggler stretch emerge from event ordering instead of
// being scalar corrections bolted onto a closed form.
//
// Determinism / tie ordering (the contract every replay relies on):
// events at equal timestamps fire in submission order — each push is
// stamped with a monotone sequence number and the heap orders by
// (time, seq) — so a replay is a pure function of its inputs: same
// trace, same schedule, bit for bit. The guarantee survives cancels:
// cancelling an event never reorders the remaining ones, because
// cancellation only marks the entry and the (time, seq) keys of live
// entries are untouched (tests/sim/test_sim_kernel.cpp pins
// equal-time FIFO order across interleaved cancels).
//
// Scale: the heap is 4-ary (children of i at 4i+1..4i+4), which
// roughly halves the tree depth of a binary heap and keeps each
// sift's children in one or two cache lines — the difference between
// a batch replay with hundreds of pending events and a service-mode
// horizon holding millions (see BENCH_service.json for the profiled
// push/pop/cancel costs at 1M pending events). Cancellation is lazy:
// cancel(id) marks the entry and pops skip it, so cancel is O(1)
// amortized instead of a heap rebuild; when dead entries outnumber
// live ones the queue compacts in place (O(n), amortized against the
// cancels that created the garbage) so memory stays within 2x live.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/units.hpp"

namespace bvl::sim {

/// Monotone simulated time. The queue owns advancement; user code only
/// reads `now()`.
class SimClock {
 public:
  Seconds now() const { return now_; }

  /// Moves time forward. Rejects travel into the past — an event
  /// scheduled before `now()` is a bug in the caller, not a policy.
  void advance_to(Seconds t);

 private:
  Seconds now_ = 0;
};

/// Handle for a scheduled event, usable with cancel(). Handles are the
/// insertion sequence numbers, so they are unique per queue lifetime
/// and never reused.
using EventId = std::uint64_t;

/// Min-heap of (time, seq, callback). `seq` is the insertion order and
/// breaks timestamp ties FIFO (see the header comment for the full
/// tie-ordering contract).
class EventQueue {
 public:
  /// Schedules `fn` and returns a handle for cancel().
  EventId push(Seconds time, std::function<void()> fn);

  /// Marks a pending event dead; it will be skipped when it reaches
  /// the top of the heap. Returns false when `id` is not pending
  /// (already run, already cancelled, or never issued). Never affects
  /// the firing order of the remaining events.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  /// Live (non-cancelled) pending events.
  std::size_t size() const { return live_; }

  /// Time of the earliest pending live event. Only valid when !empty().
  Seconds next_time() const;

  /// Pops the earliest live event, advances `clock` to its timestamp,
  /// and runs its callback (which may push further events).
  void run_next(SimClock& clock);

 private:
  struct Entry {
    Seconds time = 0;
    EventId seq = 0;
    std::function<void()> fn;
  };
  /// Min-heap order: earlier (time, seq) first.
  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Drops cancelled entries sitting at the top, maintaining the
  /// invariant that heap_.front() (when live_ > 0) is a live event.
  void drop_dead_top();
  /// Rebuilds the heap without the dead entries once they dominate.
  void compact();

  std::vector<Entry> heap_;  ///< 4-ary min-heap on (time, seq)
  /// One bit per id ever issued: set = ran or cancelled. An id with a
  /// clear bit is exactly a live heap entry, which is what makes
  /// cancel O(1) — no pending-set bookkeeping on the push/pop path.
  std::vector<bool> spent_;
  std::size_t live_ = 0;  ///< heap entries whose spent_ bit is clear
  EventId next_seq_ = 0;
};

/// Clock + queue + run loop: the object a replay drives.
class Simulation {
 public:
  Seconds now() const { return clock_.now(); }

  /// Schedules `fn` at absolute time `t` (>= now()).
  EventId at(Seconds t, std::function<void()> fn);

  /// Schedules `fn` at now() + delay (delay >= 0).
  EventId in(Seconds delay, std::function<void()> fn);

  /// Cancels a pending event scheduled by at()/in(). Returns false
  /// when it already ran or was already cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events in (time, submission) order until the queue drains.
  void run();

  std::uint64_t events_run() const { return events_run_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  SimClock clock_;
  EventQueue queue_;
  std::uint64_t events_run_ = 0;
};

}  // namespace bvl::sim
