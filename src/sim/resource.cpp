#include "sim/resource.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace bvl::sim {

SlotPool::SlotPool(Simulation& sim, int slots) : sim_(sim), slots_(slots) {
  require(slots >= 1, "SlotPool: need at least one slot");
}

void SlotPool::set_in_use(int n) {
  Seconds now = sim_.now();
  busy_acc_ += static_cast<Seconds>(in_use_) * (now - last_change_);
  last_change_ = now;
  in_use_ = n;
}

Seconds SlotPool::busy_slot_seconds(Seconds now) const {
  return busy_acc_ + static_cast<Seconds>(in_use_) * (now - last_change_);
}

void SlotPool::acquire(std::function<void()> on_granted) {
  require(static_cast<bool>(on_granted), "SlotPool: null grant callback");
  if (in_use_ < slots_ && waiters_.empty()) {
    set_in_use(in_use_ + 1);
    on_granted();
    return;
  }
  waiters_.push_back(std::move(on_granted));
}

bool SlotPool::try_acquire() {
  if (in_use_ >= slots_ || !waiters_.empty()) return false;
  set_in_use(in_use_ + 1);
  return true;
}

void SlotPool::release() {
  require(in_use_ > 0, "SlotPool: release without acquire");
  if (!waiters_.empty()) {
    // Hand the slot straight to the oldest waiter: in_use stays
    // constant, the grant callback fires from the event queue at the
    // current time so it interleaves FIFO with other pending events.
    std::function<void()> next = std::move(waiters_.front());
    waiters_.pop_front();
    sim_.in(0, std::move(next));
    return;
  }
  set_in_use(in_use_ - 1);
}

void ServiceQueue::submit(Seconds service_s, std::function<void()> on_done) {
  require(service_s >= 0, "ServiceQueue: negative service time");
  require(static_cast<bool>(on_done), "ServiceQueue: null completion callback");
  Seconds start = std::max(sim_.now(), free_at_);
  free_at_ = start + service_s;
  busy_s_ += service_s;
  ++requests_;
  sim_.at(free_at_, std::move(on_done));
}

}  // namespace bvl::sim
