#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace bvl::sim {

void SimClock::advance_to(Seconds t) {
  require(t >= now_, "SimClock: time must not run backwards");
  now_ = t;
}

bool EventQueue::later(const Entry& a, const Entry& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

void EventQueue::push(Seconds time, std::function<void()> fn) {
  require(static_cast<bool>(fn), "EventQueue: null event callback");
  heap_.push_back(Entry{time, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

Seconds EventQueue::next_time() const {
  require(!heap_.empty(), "EventQueue: next_time on empty queue");
  return heap_.front().time;
}

void EventQueue::run_next(SimClock& clock) {
  require(!heap_.empty(), "EventQueue: run_next on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  clock.advance_to(e.time);
  e.fn();
}

void Simulation::at(Seconds t, std::function<void()> fn) {
  require(t >= clock_.now(), "Simulation: event scheduled in the past");
  queue_.push(t, std::move(fn));
}

void Simulation::in(Seconds delay, std::function<void()> fn) {
  require(delay >= 0, "Simulation: negative delay");
  queue_.push(clock_.now() + delay, std::move(fn));
}

void Simulation::run() {
  while (!queue_.empty()) {
    queue_.run_next(clock_);
    ++events_run_;
  }
}

}  // namespace bvl::sim
