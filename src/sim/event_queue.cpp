#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace bvl::sim {

namespace {
constexpr std::size_t kArity = 4;
/// Below this many entries a compaction saves too little to bother.
constexpr std::size_t kCompactFloor = 64;
}  // namespace

void SimClock::advance_to(Seconds t) {
  require(t >= now_, "SimClock: time must not run backwards");
  now_ = t;
}

void EventQueue::sift_up(std::size_t i) {
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(e);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  for (;;) {
    std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(e);
}

EventId EventQueue::push(Seconds time, std::function<void()> fn) {
  require(static_cast<bool>(fn), "EventQueue: null event callback");
  EventId id = next_seq_++;
  spent_.push_back(false);
  heap_.push_back(Entry{time, id, std::move(fn)});
  sift_up(heap_.size() - 1);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  // spent_ covers every id ever issued: a set bit means the event
  // already ran or was already cancelled, so only a clear bit marks a
  // live heap entry. That makes cancel O(1) plus the (amortized)
  // dead-top drop below.
  if (id >= next_seq_ || spent_[id]) return false;
  spent_[id] = true;
  --live_;
  drop_dead_top();
  if (heap_.size() - live_ > live_ && heap_.size() > kCompactFloor) compact();
  return true;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && spent_[heap_.front().seq]) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

void EventQueue::compact() {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (spent_[heap_[i].seq]) continue;
    if (keep != i) heap_[keep] = std::move(heap_[i]);
    ++keep;
  }
  heap_.resize(keep);
  // Floyd heapify: sift_down from the last internal node. Heap order
  // is on unique (time, seq) keys, so the resulting pop order is
  // independent of the array order we start from.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) sift_down(i);
  }
}

Seconds EventQueue::next_time() const {
  require(live_ > 0, "EventQueue: next_time on empty queue");
  // drop_dead_top keeps the front live whenever live_ > 0.
  return heap_.front().time;
}

void EventQueue::run_next(SimClock& clock) {
  require(live_ > 0, "EventQueue: run_next on empty queue");
  Entry e = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  spent_[e.seq] = true;
  --live_;
  drop_dead_top();
  clock.advance_to(e.time);
  e.fn();
}

EventId Simulation::at(Seconds t, std::function<void()> fn) {
  require(t >= clock_.now(), "Simulation: event scheduled in the past");
  return queue_.push(t, std::move(fn));
}

EventId Simulation::in(Seconds delay, std::function<void()> fn) {
  require(delay >= 0, "Simulation: negative delay");
  return queue_.push(clock_.now() + delay, std::move(fn));
}

void Simulation::run() {
  while (!queue_.empty()) {
    queue_.run_next(clock_);
    ++events_run_;
  }
}

}  // namespace bvl::sim
