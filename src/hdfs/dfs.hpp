// Simulated HDFS: block planning and datanode I/O accounting.
//
// The paper's system-level knob is the HDFS block size (32-512 MB).
// Its two effects are structural and reproduced here:
//   * number of map tasks = ceil(input / block size), so small blocks
//     multiply per-task scheduling overhead and master interaction
//     (why 32 MB is always worst, Sec. 3.1.1);
//   * block size sets the sequential-run length on disk, so large
//     blocks amortize seeks (why I/O-bound apps keep improving to
//     512 MB while compute-bound apps plateau at 256 MB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/storage.hpp"
#include "util/units.hpp"

namespace bvl::hdfs {

struct DfsConfig {
  Bytes block_size = 128 * MB;
  int replication = 1;  ///< pipeline copies on write
  /// Fixed master (JobTracker/RM) interaction cost per task, seconds.
  /// Covers heartbeat-based assignment and task launch.
  Seconds per_task_overhead_s = 2.2;
  /// One-time job setup / cleanup wall cost, seconds.
  Seconds job_setup_s = 4.0;
  Seconds job_cleanup_s = 3.0;
};

/// One HDFS block of a logical input file.
struct BlockInfo {
  std::uint64_t id = 0;
  Bytes offset = 0;
  Bytes length = 0;
};

/// Plans the block list for a file of `file_size` bytes. The final
/// block may be short. Throws on zero sizes.
std::vector<BlockInfo> plan_blocks(Bytes file_size, Bytes block_size);

/// Number of map tasks Hadoop would launch for this input
/// (= number of blocks; the paper's "Input data size / HDFS block
/// size" formula in Sec. 3.1.1).
std::uint64_t num_map_tasks(Bytes file_size, Bytes block_size);

/// Datanode-side I/O timing: wraps the node's StorageModel and adds
/// HDFS-specific costs (replication write amplification, one seek per
/// block boundary).
class DataNode {
 public:
  DataNode(arch::StorageModel storage, DfsConfig cfg);

  /// Device seconds to read `bytes` laid out in `blocks` blocks.
  Seconds read_time(Bytes bytes, std::uint64_t blocks = 1) const;

  /// Device seconds to write `bytes`; replication multiplies the
  /// locally written volume (pipeline copies land on peers, but the
  /// local disk also absorbs its share of peers' pipelines — in
  /// steady state write amplification equals the replication factor).
  Seconds write_time(Bytes bytes, std::uint64_t blocks = 1) const;

  /// CPU-side kernel instructions for a read+write volume.
  double kernel_instructions(Bytes read_bytes, Bytes write_bytes) const;

  const DfsConfig& config() const { return cfg_; }
  const arch::StorageModel& storage() const { return storage_; }

 private:
  arch::StorageModel storage_;
  DfsConfig cfg_;
};

}  // namespace bvl::hdfs
