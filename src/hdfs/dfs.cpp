#include "hdfs/dfs.hpp"

#include "util/error.hpp"

namespace bvl::hdfs {

std::vector<BlockInfo> plan_blocks(Bytes file_size, Bytes block_size) {
  require(file_size > 0, "plan_blocks: empty file");
  require(block_size > 0, "plan_blocks: zero block size");
  std::vector<BlockInfo> out;
  Bytes off = 0;
  std::uint64_t id = 0;
  while (off < file_size) {
    Bytes len = std::min(block_size, file_size - off);
    out.push_back({id++, off, len});
    off += len;
  }
  return out;
}

std::uint64_t num_map_tasks(Bytes file_size, Bytes block_size) {
  require(block_size > 0, "num_map_tasks: zero block size");
  return (file_size + block_size - 1) / block_size;
}

DataNode::DataNode(arch::StorageModel storage, DfsConfig cfg)
    : storage_(std::move(storage)), cfg_(cfg) {
  require(cfg_.replication >= 1, "DataNode: replication must be >= 1");
  require(cfg_.block_size > 0, "DataNode: zero block size");
}

Seconds DataNode::read_time(Bytes bytes, std::uint64_t blocks) const {
  return storage_.transfer_time(bytes, blocks);
}

Seconds DataNode::write_time(Bytes bytes, std::uint64_t blocks) const {
  auto amplified = static_cast<Bytes>(static_cast<double>(bytes) * cfg_.replication);
  return storage_.transfer_time(amplified, blocks);
}

double DataNode::kernel_instructions(Bytes read_bytes, Bytes write_bytes) const {
  auto write_amp = static_cast<Bytes>(static_cast<double>(write_bytes) * cfg_.replication);
  return storage_.kernel_instructions(read_bytes + write_amp);
}

}  // namespace bvl::hdfs
