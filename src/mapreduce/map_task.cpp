#include "mapreduce/map_task.hpp"

#include <utility>

#include "mapreduce/merge.hpp"
#include "util/error.hpp"

namespace bvl::mr {

MapOutputCollector::MapOutputCollector(Bytes spill_threshold, Reducer* combiner, WorkCounters& c)
    : threshold_(spill_threshold), combiner_(combiner), c_(c) {
  require(threshold_ > 0, "MapOutputCollector: zero spill threshold");
}

void MapOutputCollector::emit(std::string key, std::string value) {
  KV kv{std::move(key), std::move(value)};
  std::size_t b = kv.bytes();
  c_.emits += 1;
  c_.emit_bytes += static_cast<double>(b);
  buffered_bytes_ += b;
  buffer_.push_back(std::move(kv));
  if (buffered_bytes_ >= threshold_) spill();
}

void MapOutputCollector::sort_and_combine(std::vector<KV>& run) {
  counting_sort_run(run, c_);
  if (combiner_ == nullptr || run.empty()) return;

  // Group adjacent equal keys and feed each group to the combiner.
  std::vector<KV> combined;
  combined.reserve(run.size() / 2 + 1);

  // Inline emitter capturing combiner output (already key-grouped, so
  // output order stays sorted as long as the combiner emits the group
  // key, which Hadoop requires).
  struct VecEmitter final : Emitter {
    std::vector<KV>* out;
    void emit(std::string key, std::string value) override {
      out->push_back({std::move(key), std::move(value)});
    }
  } emitter;
  emitter.out = &combined;

  std::size_t i = 0;
  while (i < run.size()) {
    std::size_t j = i + 1;
    while (j < run.size() && run[j].key == run[i].key) ++j;
    std::vector<std::string> values;
    values.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) values.push_back(std::move(run[k].value));
    c_.hash_ops += 1;  // one group lookup per distinct key
    combiner_->reduce(run[i].key, values, emitter, c_);
    i = j;
  }
  run = std::move(combined);
}

void MapOutputCollector::spill() {
  if (buffer_.empty()) return;
  std::vector<KV> run = std::move(buffer_);
  buffer_.clear();
  buffered_bytes_ = 0;
  sort_and_combine(run);
  double bytes = run_bytes(run);
  c_.spills += 1;
  c_.spill_bytes += bytes;
  c_.disk_seeks += 1;
  ++spill_count_;
  runs_.push_back(std::move(run));
}

std::vector<KV> MapOutputCollector::close() {
  spill();
  if (runs_.empty()) return {};
  if (runs_.size() == 1) return std::move(runs_.front());

  // Multi-spill: Hadoop re-reads every spill file and writes one
  // merged map-output file.
  double total = 0;
  for (const auto& r : runs_) total += run_bytes(r);
  c_.merge_read_bytes += total;
  c_.disk_write_bytes += total;
  c_.disk_seeks += static_cast<double>(runs_.size());
  std::vector<KV> merged = merge_runs(std::move(runs_), c_);
  runs_.clear();
  return merged;
}

MapTaskResult run_map_task(const JobDefinition& def, std::uint64_t block_id, Bytes exec_bytes,
                           Bytes exec_spill_buffer, bool use_combiner, std::uint64_t seed) {
  MapTaskResult result;
  WorkCounters& c = result.counters;

  auto source = def.open_split(block_id, exec_bytes, seed);
  require(source != nullptr, "run_map_task: null split source");
  auto mapper = def.make_mapper();
  require(mapper != nullptr, "run_map_task: null mapper");
  std::unique_ptr<Reducer> combiner = use_combiner ? def.make_combiner() : nullptr;

  MapOutputCollector collector(exec_spill_buffer, combiner.get(), c);

  Record rec;
  while (source->next(rec)) {
    double b = static_cast<double>(rec.bytes());
    c.input_records += 1;
    c.input_bytes += b;
    c.disk_read_bytes += b;  // HDFS block read
    mapper->map(rec, collector, c);
  }
  c.disk_seeks += 1;  // block open
  result.output = collector.close();
  return result;
}

}  // namespace bvl::mr
