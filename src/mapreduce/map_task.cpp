#include "mapreduce/map_task.hpp"

#include <algorithm>
#include <utility>

#include "mapreduce/merge.hpp"
#include "util/error.hpp"

namespace bvl::mr {

MapOutputCollector::MapOutputCollector(Bytes spill_threshold, Reducer* combiner, WorkCounters& c)
    : threshold_(spill_threshold), combiner_(combiner), c_(c) {
  require(threshold_ > 0, "MapOutputCollector: zero spill threshold");
  // Size the fill buffer like io.sort.mb: payload is bounded by the
  // spill threshold, so one up-front reservation makes the steady
  // state allocation-free. Capped so tiny test thresholds stay tiny
  // and huge buffers grow on demand instead of committing pages.
  arena_.reserve(std::min<std::size_t>(threshold_, 4u * 1024 * 1024));
}

void MapOutputCollector::emit(std::string_view key, std::string_view value) {
  std::size_t b = key.size() + value.size() + KV::kFramingBytes;
  c_.emits += 1;
  c_.emit_bytes += static_cast<double>(b);
  c_.arena_bytes += static_cast<double>(key.size() + value.size());
  buffered_bytes_ += b;
  buffer_.push_back(arena_.append(key, value));
  if (buffered_bytes_ >= threshold_) spill();
}

void MapOutputCollector::sort_and_combine(ArenaRun& run) {
  counting_sort_refs(run.data, run.refs, c_);
  if (combiner_ == nullptr || run.empty()) return;

  // Group adjacent equal keys and feed each group to the combiner,
  // which emits into a fresh arena (already key-grouped, so output
  // order stays sorted as long as the combiner emits the group key,
  // which Hadoop requires). Input views stay valid throughout: the
  // output arena is a distinct buffer.
  ArenaRun combined;
  combined.refs.reserve(run.size() / 2 + 1);

  struct ArenaEmitter final : Emitter {
    ArenaRun* out;
    double* arena_bytes;
    void emit(std::string_view key, std::string_view value) override {
      *arena_bytes += static_cast<double>(key.size() + value.size());
      out->refs.push_back(out->data.append(key, value));
    }
  } emitter;
  emitter.out = &combined;
  emitter.arena_bytes = &c_.arena_bytes;

  std::size_t i = 0;
  while (i < run.size()) {
    std::string_view group_key = run.key(i);
    std::size_t j = i + 1;
    while (j < run.size() && ref_key_eq(run.data, run.refs[j], run.data, run.refs[i])) ++j;
    values_scratch_.clear();
    for (std::size_t k = i; k < j; ++k) values_scratch_.push_back(run.value(k));
    c_.hash_ops += 1;  // one group lookup per distinct key
    combiner_->reduce(group_key, values_scratch_, emitter, c_);
    i = j;
  }
  // Recycle the spent input arena as the next fill buffer: its
  // capacity is already sized to the spill threshold.
  spare_ = std::move(run.data);
  spare_.reset();
  run = std::move(combined);
}

void MapOutputCollector::note_footprint() {
  double resident = static_cast<double>(resident_run_bytes_ + arena_.size());
  c_.peak_run_bytes = std::max(c_.peak_run_bytes, resident);
}

void MapOutputCollector::spill() {
  if (buffer_.empty()) return;
  note_footprint();
  std::size_t spilled_records = buffer_.size();
  ArenaRun run{std::move(arena_), std::move(buffer_)};
  arena_ = std::move(spare_);
  spare_ = KVArena();
  buffer_.clear();
  // The move above surrendered the index allocation to the sealed
  // run; re-reserve so the next fill doesn't regrow from scratch.
  buffer_.reserve(spilled_records);
  buffered_bytes_ = 0;
  sort_and_combine(run);
  double bytes = run_bytes(run);
  c_.spills += 1;
  c_.spill_bytes += bytes;
  c_.disk_seeks += 1;
  ++spill_count_;
  resident_run_bytes_ += run.data.size();
  runs_.push_back(std::move(run));
  note_footprint();
}

ArenaRun MapOutputCollector::close() {
  spill();
  if (runs_.empty()) return {};
  if (runs_.size() == 1) {
    ArenaRun only = std::move(runs_.front());
    runs_.clear();
    return only;
  }

  // Multi-spill: Hadoop re-reads every spill file and writes one
  // merged map-output file.
  double total = 0;
  for (const auto& r : runs_) total += run_bytes(r);
  c_.merge_read_bytes += total;
  c_.disk_write_bytes += total;
  c_.disk_seeks += static_cast<double>(runs_.size());
  ArenaRun merged = merge_runs(std::move(runs_), c_);
  runs_.clear();
  c_.peak_run_bytes = std::max(
      c_.peak_run_bytes, static_cast<double>(resident_run_bytes_ + merged.data.size()));
  return merged;
}

MapTaskResult run_map_task(const JobDefinition& def, std::uint64_t block_id, Bytes exec_bytes,
                           Bytes exec_spill_buffer, bool use_combiner, std::uint64_t seed) {
  MapTaskResult result;
  WorkCounters& c = result.counters;

  auto source = def.open_split(block_id, exec_bytes, seed);
  require(source != nullptr, "run_map_task: null split source");
  auto mapper = def.make_mapper();
  require(mapper != nullptr, "run_map_task: null mapper");
  std::unique_ptr<Reducer> combiner = use_combiner ? def.make_combiner() : nullptr;

  MapOutputCollector collector(exec_spill_buffer, combiner.get(), c);

  Record rec;
  while (source->next(rec)) {
    double b = static_cast<double>(rec.bytes());
    c.input_records += 1;
    c.input_bytes += b;
    c.disk_read_bytes += b;  // HDFS block read
    mapper->map(rec, collector, c);
  }
  c.disk_seeks += 1;  // block open
  result.output = collector.close();
  return result;
}

}  // namespace bvl::mr
