// User-facing MapReduce programming interfaces, mirroring Hadoop's:
// a Mapper, a Reducer (also usable as a Combiner), a record source per
// input split, and a JobDefinition bundling them with an optional
// custom partitioner (TeraSort's total-order partitioner).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/counters.hpp"
#include "mapreduce/kv.hpp"
#include "util/units.hpp"

namespace bvl::mr {

/// Sink for map/combine/reduce output. The views are consumed during
/// the call (the collector appends the bytes to its arena), so
/// callers may pass views into temporaries or into their input
/// record.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(std::string_view key, std::string_view value) = 0;
};

class Mapper {
 public:
  virtual ~Mapper() = default;
  /// Processes one record. Implementations bump workload-specific
  /// counters (token_ops, compute_units) on `c`; the engine handles
  /// record/byte accounting.
  virtual void map(const Record& rec, Emitter& out, WorkCounters& c) = 0;
};

/// Reducer (also usable as a combiner). `key` and the views in
/// `values` point into sealed arena buffers and stay valid for the
/// duration of the call; emitting goes to a distinct output arena, so
/// reading the inputs while emitting is always safe.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void reduce(std::string_view key, const std::vector<std::string_view>& values,
                      Emitter& out, WorkCounters& c) = 0;
};

/// Generates the records of one input split at executed scale.
class SplitSource {
 public:
  virtual ~SplitSource() = default;
  /// Produces the next record; returns false when the split is
  /// exhausted.
  virtual bool next(Record& rec) = 0;
};

/// A complete application: how to read splits, map, combine, reduce,
/// and partition. Implemented by each workload in src/workloads.
class JobDefinition {
 public:
  virtual ~JobDefinition() = default;

  virtual std::string name() const = 0;

  /// Opens split `block_id`, generating ~`exec_bytes` of input data
  /// deterministically from `seed`.
  virtual std::unique_ptr<SplitSource> open_split(std::uint64_t block_id, Bytes exec_bytes,
                                                  std::uint64_t seed) const = 0;

  virtual std::unique_ptr<Mapper> make_mapper() const = 0;

  /// Null means a map-only job (the paper's Sort: sorting happens in
  /// the map-side spill/merge path and there is no reduce phase).
  virtual std::unique_ptr<Reducer> make_reducer() const { return nullptr; }

  /// Null means no combiner.
  virtual std::unique_ptr<Reducer> make_combiner() const { return nullptr; }

  /// Pre-job work (TeraSort's input sampling); charge work to `c`.
  /// `exec_bytes`/`seed` describe a representative sample split.
  virtual void prepare(Bytes exec_bytes, std::uint64_t seed, WorkCounters& c) {
    (void)exec_bytes;
    (void)seed;
    (void)c;
  }

  /// Routes a key to a reduce partition. Default: stable hash.
  virtual int partition(std::string_view key, int num_reducers) const;

  virtual int default_reducers() const { return 4; }

  /// Whether the job enables map-output compression by default
  /// (TeraSort's canonical tuning). JobConfig can override.
  virtual bool compress_map_output() const { return false; }
};

/// FNV-1a; the default partitioner and the engine's grouping hash.
std::uint64_t stable_hash(std::string_view s);

}  // namespace bvl::mr
