// KVArena: the contiguous map-output buffer, modeled on Hadoop's
// MapOutputBuffer (io.sort.mb). Every emitted pair is appended once —
// key bytes then value bytes — and addressed from then on by a
// 16-byte KVRef. Sorting a run sorts the KVRef index; spilling seals
// the arena; merging moves winning payloads into the output arena
// with a single bounded append. No per-record heap allocations occur
// anywhere on the intermediate path.
//
// Lifetime rule: append() may grow the underlying buffer, so
// string_views obtained from an arena are invalidated by a later
// append *to the same arena*. The pipeline never needs that: combine
// and reduce read from sealed input arenas while emitting into a
// distinct output arena.
#pragma once

#include <cstring>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "mapreduce/kv.hpp"
#include "util/error.hpp"

namespace bvl::mr {

class KVArena {
 public:
  KVArena() = default;
  explicit KVArena(std::size_t reserve_bytes) { reserve(reserve_bytes); }

  // The buffer is a raw allocation rather than a std::vector: the
  // per-emit append must stay a capacity check plus memcpy, with no
  // out-of-line resize machinery and no zero-fill of bytes that are
  // about to be overwritten. Moves must zero the source's size so a
  // moved-from arena reads as empty.
  KVArena(KVArena&& o) noexcept : buf_(std::move(o.buf_)), size_(o.size_), cap_(o.cap_) {
    o.size_ = 0;
    o.cap_ = 0;
  }
  KVArena& operator=(KVArena&& o) noexcept {
    buf_ = std::move(o.buf_);
    size_ = o.size_;
    cap_ = o.cap_;
    o.size_ = 0;
    o.cap_ = 0;
    return *this;
  }
  KVArena(const KVArena&) = delete;
  KVArena& operator=(const KVArena&) = delete;

  /// Appends one record's payload; returns its index entry.
  KVRef append(std::string_view key, std::string_view value) {
    // Cold branch kept out of require(): the message string must not
    // be constructed on the per-emit happy path.
    if ((key.size() | value.size()) > 0xFFFF) {
      throw Error("KVArena::append: key or value exceeds the 64 KiB record limit");
    }
    KVRef ref;
    ref.key_off = static_cast<std::uint32_t>(size_);
    ref.key_len = static_cast<std::uint16_t>(key.size());
    ref.val_len = static_cast<std::uint16_t>(value.size());
    ref.prefix = KVRef::prefix_of(key);
    char* dst = grow(key.size() + value.size());
    if (!key.empty()) std::memcpy(dst, key.data(), key.size());
    if (!value.empty()) std::memcpy(dst + key.size(), value.data(), value.size());
    return ref;
  }

  /// Appends a record resident in `src` (merge moving a winner into
  /// the output arena): one bounded copy of the raw payload bytes.
  KVRef append(const KVArena& src, const KVRef& ref) {
    KVRef out = ref;
    out.key_off = static_cast<std::uint32_t>(size_);
    std::size_t n = static_cast<std::size_t>(ref.key_len) + ref.val_len;
    char* dst = grow(n);
    if (n != 0) std::memcpy(dst, src.buf_.get() + ref.key_off, n);
    return out;
  }

  std::string_view key(const KVRef& r) const {
    return {buf_.get() + r.key_off, r.key_len};
  }
  std::string_view value(const KVRef& r) const {
    return {buf_.get() + r.val_off(), r.val_len};
  }

  /// Payload bytes stored (keys + values, no framing).
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

  /// Clears the contents but keeps the allocation, so a recycled
  /// arena refills without touching the allocator.
  void reset() { size_ = 0; }

  void reserve(std::size_t bytes) {
    if (bytes > cap_) regrow(bytes);
  }

 private:
  /// Extends the buffer by `n` bytes and returns the write position.
  char* grow(std::size_t n) {
    if (size_ + n > cap_) regrow(size_ + n);
    char* p = buf_.get() + size_;
    size_ += n;
    return p;
  }

  void regrow(std::size_t need) {
    // KVRef packs offsets in 32 bits, so one arena caps at 4 GiB of
    // payload — far above any task-local buffer this simulator sizes.
    require(need <= 0xFFFFFFFFull, "KVArena: payload exceeds the 4 GiB arena limit");
    std::size_t cap = cap_ < 32 ? 64 : cap_ * 2;
    if (cap < need) cap = need;
    if (cap > 0xFFFFFFFFull) cap = 0xFFFFFFFFull;
    std::unique_ptr<char[]> next(new char[cap]);
    if (size_ != 0) std::memcpy(next.get(), buf_.get(), size_);
    buf_ = std::move(next);
    cap_ = cap;
  }

  std::unique_ptr<char[]> buf_;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

/// Key order over index entries: the cached prefixes decide the
/// common case, keys of at most eight bytes are decided entirely by
/// (prefix, len) — a prefix tie then means the shorter key is a
/// strict prefix of the longer — and only longer keys with a shared
/// 8-byte stem fall back to comparing arena memory.
inline bool ref_key_less(const KVArena& a_data, const KVRef& a, const KVArena& b_data,
                         const KVRef& b) {
  if (a.prefix != b.prefix) return a.prefix < b.prefix;
  if (a.key_len <= 8 && b.key_len <= 8) return a.key_len < b.key_len;
  return a_data.key(a) < b_data.key(b);
}

inline bool ref_key_eq(const KVArena& a_data, const KVRef& a, const KVArena& b_data,
                       const KVRef& b) {
  if (a.prefix != b.prefix || a.key_len != b.key_len) return false;
  if (a.key_len <= 8) return true;
  return a_data.key(a) == b_data.key(b);
}

/// A sealed run: an owning arena plus its (typically key-sorted)
/// index. This is the unit the spill/merge path and the map-output
/// hand-off move around — moving an ArenaRun moves a buffer pointer,
/// never record payloads.
struct ArenaRun {
  KVArena data;
  std::vector<KVRef> refs;

  bool empty() const { return refs.empty(); }
  std::size_t size() const { return refs.size(); }
  std::string_view key(std::size_t i) const { return data.key(refs[i]); }
  std::string_view value(std::size_t i) const { return data.value(refs[i]); }
};

/// A non-owning sorted slice of some ArenaRun: the shuffle routes
/// each map output's refs into per-partition RunViews without
/// touching payload bytes. The backing arena (the map task's output)
/// must outlive the view — the engine keeps map outputs alive until
/// the reduce phase completes.
struct RunView {
  const KVArena* data = nullptr;
  std::vector<KVRef> refs;

  bool empty() const { return refs.empty(); }
  std::size_t size() const { return refs.size(); }
  std::string_view key(std::size_t i) const { return data->key(refs[i]); }
  std::string_view value(std::size_t i) const { return data->value(refs[i]); }
};

/// Whole-run view, used by the reduce path's group iterator tests and
/// single-segment shuffles.
inline RunView view_of(const ArenaRun& run) { return {&run.data, run.refs}; }

}  // namespace bvl::mr
