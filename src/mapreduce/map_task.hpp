// Map task execution: record reader -> Mapper -> sort buffer with
// spill/merge, optionally running a combiner at each spill, exactly
// mirroring Hadoop's map-side pipeline. This is where the paper's
// block-size effects come from: a bigger block feeds more output
// through a fixed-size sort buffer, producing more spills and a deeper
// final merge ("if map task has to handle more than one spill, more
// read/write operations will be required", Sec. 3.1.1).
#pragma once

#include <memory>
#include <vector>

#include "mapreduce/api.hpp"
#include "mapreduce/counters.hpp"
#include "mapreduce/kv.hpp"

namespace bvl::mr {

/// Map-side output collector: buffers emits, spills sorted (and
/// combined) runs when the buffer threshold is exceeded, and merges
/// the runs at close.
class MapOutputCollector final : public Emitter {
 public:
  /// `spill_threshold` is the executed-scale buffer size in bytes;
  /// `combiner` may be null.
  MapOutputCollector(Bytes spill_threshold, Reducer* combiner, WorkCounters& c);

  void emit(std::string key, std::string value) override;

  /// Final spill + merge of all runs; returns the single sorted,
  /// combined output run.
  std::vector<KV> close();

  std::size_t spill_count() const { return spill_count_; }

 private:
  void spill();
  /// Sorts + combines `run` in place (no-op combine when combiner_
  /// is null).
  void sort_and_combine(std::vector<KV>& run);

  Bytes threshold_;
  Reducer* combiner_;
  WorkCounters& c_;
  std::vector<KV> buffer_;
  std::size_t buffered_bytes_ = 0;
  std::vector<std::vector<KV>> runs_;
  std::size_t spill_count_ = 0;
};

struct MapTaskResult {
  WorkCounters counters;   ///< executed-scale counters
  std::vector<KV> output;  ///< sorted map output (post-combine)
};

/// Runs one map task over the split produced by `def.open_split`.
MapTaskResult run_map_task(const JobDefinition& def, std::uint64_t block_id, Bytes exec_bytes,
                           Bytes exec_spill_buffer, bool use_combiner, std::uint64_t seed);

}  // namespace bvl::mr
