// Map task execution: record reader -> Mapper -> sort buffer with
// spill/merge, optionally running a combiner at each spill, exactly
// mirroring Hadoop's map-side pipeline. This is where the paper's
// block-size effects come from: a bigger block feeds more output
// through a fixed-size sort buffer, producing more spills and a deeper
// final merge ("if map task has to handle more than one spill, more
// read/write operations will be required", Sec. 3.1.1).
//
// Zero-copy collector: emits append raw bytes to a KVArena
// (Hadoop's MapOutputBuffer) and push a 16-byte KVRef onto the index;
// sort orders the index, the combiner reads grouped views and emits
// into a fresh arena, and a spill seals the arena into an ArenaRun.
// Record payloads are copied exactly once per pipeline stage boundary
// (emit, combine output, final merge) and never per comparison.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "mapreduce/api.hpp"
#include "mapreduce/arena.hpp"
#include "mapreduce/counters.hpp"
#include "mapreduce/kv.hpp"

namespace bvl::mr {

/// Map-side output collector: buffers emits, spills sorted (and
/// combined) runs when the buffer threshold is exceeded, and merges
/// the runs at close.
class MapOutputCollector final : public Emitter {
 public:
  /// `spill_threshold` is the executed-scale buffer size in bytes;
  /// `combiner` may be null.
  MapOutputCollector(Bytes spill_threshold, Reducer* combiner, WorkCounters& c);

  void emit(std::string_view key, std::string_view value) override;

  /// Final spill + merge of all runs; returns the single sorted,
  /// combined output run.
  ArenaRun close();

  std::size_t spill_count() const { return spill_count_; }

 private:
  void spill();
  /// Sorts `run`'s index in place, then replaces the run with the
  /// combined output (no-op combine when combiner_ is null).
  void sort_and_combine(ArenaRun& run);
  void note_footprint();

  Bytes threshold_;
  Reducer* combiner_;
  WorkCounters& c_;
  KVArena arena_;              ///< active fill buffer (io.sort.mb)
  std::vector<KVRef> buffer_;  ///< index of the active buffer
  std::size_t buffered_bytes_ = 0;
  std::vector<ArenaRun> runs_;  ///< sealed spill runs
  std::size_t resident_run_bytes_ = 0;
  std::size_t spill_count_ = 0;
  KVArena spare_;  ///< recycled fill arena (combiner path)
  std::vector<std::string_view> values_scratch_;
};

struct MapTaskResult {
  WorkCounters counters;  ///< executed-scale counters
  ArenaRun output;        ///< sorted map output (post-combine)
};

/// Runs one map task over the split produced by `def.open_split`.
MapTaskResult run_map_task(const JobDefinition& def, std::uint64_t block_id, Bytes exec_bytes,
                           Bytes exec_spill_buffer, bool use_combiner, std::uint64_t seed);

}  // namespace bvl::mr
