#include "mapreduce/fault.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace bvl::mr {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// SplitMix64-style hash of the attempt coordinates into [0, 1).
double hash01(std::uint64_t seed, TaskPhase phase, std::size_t task, int attempt,
              std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = mix64(z + (phase == TaskPhase::kMap ? 0x6d61ULL : 0x7265ULL));
  z = mix64(z + static_cast<std::uint64_t>(task) * 0xd1342543de82ef95ULL);
  z = mix64(z + static_cast<std::uint64_t>(attempt) + 1);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

std::uint64_t mix_bits(std::uint64_t h, std::uint64_t v) { return mix64(h ^ v); }

std::uint64_t double_bits(double d) {
  std::uint64_t b;
  static_assert(sizeof(b) == sizeof(d));
  __builtin_memcpy(&b, &d, sizeof(b));
  return b;
}

}  // namespace

std::uint64_t FaultPlan::cache_key() const {
  std::uint64_t h = mix64(seed + 0x9e3779b97f4a7c15ULL);
  h = mix_bits(h, double_bits(fail_prob));
  h = mix_bits(h, double_bits(straggler_prob));
  h = mix_bits(h, double_bits(straggler_factor));
  h = mix_bits(h, static_cast<std::uint64_t>(max_attempts));
  h = mix_bits(h, double_bits(backoff_base_s));
  h = mix_bits(h, speculative ? 1 : 0);
  h = mix_bits(h, double_bits(speculative_threshold));
  h = mix_bits(h, static_cast<std::uint64_t>(nodes));
  for (const auto& e : events) {
    h = mix_bits(h, static_cast<std::uint64_t>(e.kind));
    h = mix_bits(h, static_cast<std::uint64_t>(e.phase));
    h = mix_bits(h, static_cast<std::uint64_t>(e.task));
    h = mix_bits(h, static_cast<std::uint64_t>(e.attempt));
    h = mix_bits(h, double_bits(e.fraction));
    h = mix_bits(h, double_bits(e.factor));
    h = mix_bits(h, static_cast<std::uint64_t>(e.node));
  }
  return h;
}

FaultSchedule::FaultSchedule(const FaultPlan& plan) : plan_(plan) {
  require(plan_.max_attempts >= 1, "FaultPlan: max_attempts must be >= 1");
  require(plan_.fail_prob >= 0 && plan_.fail_prob < 1, "FaultPlan: fail_prob must be in [0, 1)");
  require(plan_.straggler_prob >= 0 && plan_.straggler_prob < 1,
          "FaultPlan: straggler_prob must be in [0, 1)");
  require(plan_.straggler_factor >= 1, "FaultPlan: straggler_factor must be >= 1");
  require(plan_.backoff_base_s >= 0, "FaultPlan: negative backoff");
  require(plan_.speculative_threshold >= 1, "FaultPlan: speculative_threshold must be >= 1");
  require(plan_.nodes >= 1, "FaultPlan: nodes must be >= 1");
  for (const auto& e : plan_.events) {
    require(e.attempt >= 0, "FaultEvent: negative attempt");
    require(e.fraction > 0 && e.fraction < 1, "FaultEvent: fraction must be in (0, 1)");
    require(e.factor >= 1, "FaultEvent: factor must be >= 1");
    require(e.node >= 0 && e.node < plan_.nodes, "FaultEvent: node outside the cluster");
  }
}

AttemptOutcome FaultSchedule::outcome(TaskPhase phase, std::size_t task, int attempt) const {
  AttemptOutcome o;
  if (!plan_.active()) return o;

  // Targeted events first — they override the background process.
  for (const auto& e : plan_.events) {
    if (e.phase != phase || e.attempt != attempt) continue;
    switch (e.kind) {
      case FaultKind::kFail:
        if (e.task == task) {
          o.failed = true;
          o.fail_fraction = e.fraction;
          return o;
        }
        break;
      case FaultKind::kSlowdown:
        if (e.task == task) {
          o.slowdown = e.factor;
          return o;
        }
        break;
      case FaultKind::kNodeLoss:
        if (static_cast<int>(task % static_cast<std::size_t>(plan_.nodes)) == e.node) {
          o.failed = true;
          o.fail_fraction = e.fraction;
          return o;
        }
        break;
    }
  }

  // Background process: one uniform draw decides fail vs straggler vs
  // clean, a second one places the failure point.
  double u = hash01(plan_.seed, phase, task, attempt, /*salt=*/0x5fa17);
  if (u < plan_.fail_prob) {
    o.failed = true;
    o.fail_fraction =
        std::clamp(hash01(plan_.seed, phase, task, attempt, /*salt=*/0xf7ac), 0.05, 0.95);
  } else if (u < plan_.fail_prob + plan_.straggler_prob) {
    o.slowdown = plan_.straggler_factor;
  }
  return o;
}

double FaultSchedule::backoff_s(int failures) const {
  require(failures >= 1, "FaultSchedule::backoff_s: failures must be >= 1");
  return plan_.backoff_base_s * std::pow(2.0, failures - 1);
}

TaskFaultLog FaultSchedule::run_attempts(TaskPhase phase, std::size_t task) const {
  TaskFaultLog log;
  if (!plan_.active()) return log;
  for (int a = 0;; ++a) {
    AttemptOutcome o = outcome(phase, task, a);
    if (!o.failed) {
      log.attempts = a + 1;
      log.slowdown = o.slowdown;
      log.time_factor = log.wasted_fraction + o.slowdown;
      return log;
    }
    log.wasted_fraction += o.fail_fraction;
    if (a + 1 >= plan_.max_attempts) {
      throw Error("fault: " + std::string(phase == TaskPhase::kMap ? "map" : "reduce") + " task " +
                  std::to_string(task) + " exhausted " + std::to_string(plan_.max_attempts) +
                  " attempts");
    }
    log.backoff_s += backoff_s(a + 1);
  }
}

void FaultSchedule::resolve_speculation(TaskPhase phase, std::vector<TaskFaultLog>& logs) const {
  if (!plan_.active() || !plan_.speculative || logs.empty()) return;

  // Wave-median progress rate: the detector Hadoop's speculator
  // approximates (a task is speculatable when its progress rate falls
  // well behind its peers').
  std::vector<double> rates;
  rates.reserve(logs.size());
  for (const auto& l : logs) rates.push_back(l.slowdown);
  std::nth_element(rates.begin(), rates.begin() + rates.size() / 2, rates.end());
  double median = rates[rates.size() / 2];

  for (std::size_t i = 0; i < logs.size(); ++i) {
    TaskFaultLog& log = logs[i];
    if (log.slowdown <= plan_.speculative_threshold * median) continue;
    if (log.attempts >= plan_.max_attempts) continue;  // attempt budget spent on retries

    // The backup launches when a median-rate task finishes its work
    // (that is when the straggler's lag becomes observable), and is
    // itself subject to the plan: its outcome is the task's next
    // attempt.
    double launch = std::max(1.0, median);
    if (launch >= log.slowdown) continue;  // original finishes first anyway
    AttemptOutcome backup = outcome(phase, i, log.attempts);
    log.speculated = true;
    ++log.attempts;

    double prefix = log.time_factor - log.slowdown;  // retries before the committed attempt
    if (backup.failed) {
      // Backup dies; the original straggler runs to completion.
      log.wasted_fraction += backup.fail_fraction;
      continue;
    }
    double backup_finish = launch + backup.slowdown;
    if (backup_finish < log.slowdown) {
      // Backup wins: kill the original, discard its partial output.
      log.wasted_fraction += backup_finish / log.slowdown;
      log.time_factor = prefix + backup_finish;
    } else {
      // Original wins: kill the backup at its progress so far.
      log.wasted_fraction += (log.slowdown - launch) / backup.slowdown;
      log.time_factor = prefix + log.slowdown;
    }
  }
}

}  // namespace bvl::mr
