// Work counters: the engine's equivalent of Hadoop job counters.
//
// Everything the timing overlay needs is accumulated here while the
// workload code actually executes. Counters are collected at a
// reduced "executed" scale and rescaled to the logical data size (see
// Engine), preserving structural quantities (spill count, merge depth)
// exactly and linear quantities proportionally.
#pragma once

#include <cstdint>

namespace bvl::mr {

struct WorkCounters {
  // Record flow.
  double input_records = 0;
  double input_bytes = 0;
  double output_records = 0;
  double output_bytes = 0;
  double emits = 0;        ///< map/combiner output pairs
  double emit_bytes = 0;

  // Compute structure.
  double compares = 0;      ///< comparator invocations (sorts + merges)
  double hash_ops = 0;      ///< hash-table probes (combiner, grouping, partition)
  double token_ops = 0;     ///< tokenizer / field-parse operations
  double compute_units = 0; ///< workload-specific heavy ops (FP-tree visits, model updates)

  // I/O structure.
  double spills = 0;           ///< spill events in map tasks
  double spill_bytes = 0;      ///< bytes written during spills
  double merge_read_bytes = 0; ///< bytes re-read for spill merges
  double disk_read_bytes = 0;  ///< HDFS/local reads
  double disk_write_bytes = 0; ///< HDFS/local writes
  double disk_seeks = 0;       ///< random ops
  double shuffle_bytes = 0;    ///< map->reduce network volume

  // Allocation footprint of the zero-copy KV path (mapreduce/arena.hpp).
  // Diagnostic-only: excluded from the golden-trace comparison fields
  // (trace_io emits them only on request) so committed fixtures stay
  // valid across arena-tuning changes.
  double arena_bytes = 0;     ///< payload bytes appended into KV arenas
  double peak_run_bytes = 0;  ///< peak resident sealed-run + fill-buffer bytes in one task

  void add(const WorkCounters& o);

  /// Rescales executed counters to logical scale: linear fields are
  /// multiplied by `s`; comparator work additionally by `log_adjust`
  /// (n log n vs n/s log n/s); structural counts (spills, seeks) are
  /// preserved as-is because the buffer was scaled alongside the data.
  ///
  /// When `combiner_saturated` is set, post-combine quantities
  /// (spill/merge/output/write volumes) are scale-INVARIANT: a
  /// saturated combiner collapses every spill window to the same
  /// fixed key set, so a larger window changes the pre-combine work
  /// but not the combined output (WordCount's output is the
  /// vocabulary regardless of corpus size).
  WorkCounters scaled(double s, double log_adjust, bool combiner_saturated = false) const;

  /// Multiplies every field by `f` uniformly. Used for wasted-attempt
  /// accounting: a task attempt killed at progress fraction f did f of
  /// everything the committed attempt did, structural counts included.
  WorkCounters scaled_uniform(double f) const;

  /// Total bytes hitting the storage device (reads + writes + spill
  /// traffic).
  double total_disk_bytes() const {
    return disk_read_bytes + disk_write_bytes + spill_bytes + merge_read_bytes;
  }
};

}  // namespace bvl::mr
