// Counting k-way merge over sealed arena runs. Comparator invocations
// are charged to WorkCounters::compares so merge cost scales with run
// count exactly as Hadoop's spill-merge does (n log k).
//
// Counter contract: the k-way merge is a loser tree (Hadoop's own
// merger discipline): selecting each winner costs exactly one duel per
// tournament level — ceil(log2 k) comparator invocations — instead of
// the up-to-2*log2(k) sift-down compares of the binary-heap merge it
// replaced. The golden traces were regenerated once, deliberately,
// when the heap was retired (DESIGN.md §3c records the old→new
// comparator counts). Ties between runs resolve to the lowest run
// index, so the merge is stable in run order — the property the
// differential suite (tests/mapreduce/test_merge.cpp) pins against
// merge_runs_reference.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "mapreduce/arena.hpp"
#include "mapreduce/counters.hpp"
#include "mapreduce/kv.hpp"

namespace bvl::mr {

/// Tournament tree of losers over k run cursors. The winner (smallest
/// key, lowest slot index on ties) is available in O(1); advancing it
/// replays one leaf-to-root path — exactly ceil(log2 k) duels, each
/// charged as one comparator invocation. Slots whose cursors are
/// exhausted (and the power-of-two padding slots) lose every duel
/// without a comparator call: there is no key to compare.
///
/// Cursors are (arena, refs) pairs so the same tree serves the
/// materializing merge (ArenaRun) and the streaming reduce-side
/// grouping (RunView) with identical duel sequences — the golden
/// traces rely on the two charging the same `compares` over the same
/// segments.
class LoserTree {
 public:
  struct Slot {
    const KVArena* data = nullptr;
    const std::vector<KVRef>* refs = nullptr;
    std::size_t idx = 0;
  };

  /// `slots` must outlive the tree; empty slots are allowed (they
  /// start exhausted). `compares` receives one tick per duel.
  LoserTree(std::vector<Slot> slots, std::uint64_t* compares);

  bool empty() const { return !valid(winner_); }

  /// Slot index of the current winner (lowest key; lowest slot on a
  /// tie). Only meaningful while !empty().
  std::size_t winner_slot() const { return winner_; }
  const Slot& winner() const { return slots_[winner_]; }
  const KVRef& winner_ref() const { return slots_[winner_].refs->operator[](slots_[winner_].idx); }

  /// Advances the winner's cursor one record (exhausting it when the
  /// run ends) and replays its path: ceil(log2 k) duels.
  void pop_advance();

 private:
  bool valid(std::size_t s) const {
    return s < slots_.size() && slots_[s].idx < slots_[s].refs->size();
  }
  std::size_t duel(std::size_t a, std::size_t b);
  std::size_t init_node(std::size_t node);
  void replay();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> losers_;  ///< [1, m): loser slot of each internal node
  std::size_t m_ = 1;                  ///< leaf count, power of two >= max(1, k)
  std::size_t winner_ = 0;
  std::uint64_t* compares_;
};

/// Merges sorted runs into one sealed run, counting comparator calls
/// on `c.compares`. Runs are consumed; winning payloads are appended
/// to the output arena (reserved up front, so no reallocation). Ties
/// resolve in run order (stable).
ArenaRun merge_runs(std::vector<ArenaRun> runs, WorkCounters& c);

/// Scalar reference merge: repeated linear scan for the smallest head
/// key, lowest run index on ties. O(n*k), no counters — retained
/// solely so the differential suite can assert the loser tree's output
/// is byte-identical and its tie order stable. Not used on any
/// production path.
ArenaRun merge_runs_reference(const std::vector<ArenaRun>& runs);

/// Sorts a run's index in place by key (stable), counting comparator
/// calls. Payload bytes never move.
void counting_sort_run(ArenaRun& run, WorkCounters& c);
void counting_sort_refs(const KVArena& data, std::vector<KVRef>& refs, WorkCounters& c);

/// Total serialized bytes of a run (payload + per-record framing).
double run_bytes(const ArenaRun& run);
double run_bytes(const RunView& run);

/// True when the run is non-decreasing by key.
bool is_sorted_run(const ArenaRun& run);

/// Streaming k-way merge + group iterator over sorted segments: the
/// reduce side's view of the shuffle. Pops records in globally sorted
/// order and batches equal keys into one group per next() call —
/// without materializing the merged run, so reduce values are views
/// straight into the map-output arenas. The cursor loser tree charges
/// `compares` identically to merge_runs over the same segments.
class GroupIterator {
 public:
  /// `segments` must outlive the iterator (their arenas back every
  /// view handed out). Empty segments are skipped.
  GroupIterator(const std::vector<RunView>& segments, WorkCounters& c);

  /// Advances to the next key group. `key` and the views in `values`
  /// point into the segment arenas and stay valid for the lifetime of
  /// the segments (not just the current group). Returns false when
  /// the segments are exhausted. Values within a group arrive in
  /// segment order (the tree's stable tie order).
  bool next(std::string_view& key, std::vector<std::string_view>& values);

  ~GroupIterator();

 private:
  // Declared before tree_: the tree's constructor already charges its
  // init duels through the pointer, so the counter must be live first.
  std::uint64_t compares_ = 0;
  LoserTree tree_;
  double* sink_;  ///< c.compares, flushed on destruction
};

}  // namespace bvl::mr
