// Counting k-way merge of sorted KV runs. Comparator invocations are
// charged to WorkCounters::compares so merge cost scales with run
// count exactly as Hadoop's spill-merge does (n log k).
#pragma once

#include <vector>

#include "mapreduce/counters.hpp"
#include "mapreduce/kv.hpp"

namespace bvl::mr {

/// Merges sorted runs into one sorted vector, counting comparator
/// calls on `c.compares`. Runs are consumed (moved from).
std::vector<KV> merge_runs(std::vector<std::vector<KV>> runs, WorkCounters& c);

/// Sorts `run` in place by key, counting comparator calls.
void counting_sort_run(std::vector<KV>& run, WorkCounters& c);

/// Total serialized bytes of a run.
double run_bytes(const std::vector<KV>& run);

/// True when the run is non-decreasing by key.
bool is_sorted_run(const std::vector<KV>& run);

}  // namespace bvl::mr
