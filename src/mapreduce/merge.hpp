// Counting k-way merge over sealed arena runs. Comparator invocations
// are charged to WorkCounters::compares so merge cost scales with run
// count exactly as Hadoop's spill-merge does (n log k).
//
// Counter contract: the cursor heap performs the identical sequence
// of comparator invocations the engine's original owning-string merge
// did (same push order, same max-heap discipline), so `compares` in
// the golden traces is bit-identical — only the payload handling
// changed (index moves + one bounded byte copy per winner instead of
// string copies).
#pragma once

#include <queue>
#include <string_view>
#include <vector>

#include "mapreduce/arena.hpp"
#include "mapreduce/counters.hpp"
#include "mapreduce/kv.hpp"

namespace bvl::mr {

/// Merges sorted runs into one sealed run, counting comparator calls
/// on `c.compares`. Runs are consumed; winning payloads are appended
/// to the output arena (reserved up front, so no reallocation).
ArenaRun merge_runs(std::vector<ArenaRun> runs, WorkCounters& c);

/// Sorts a run's index in place by key (stable), counting comparator
/// calls. Payload bytes never move.
void counting_sort_run(ArenaRun& run, WorkCounters& c);
void counting_sort_refs(const KVArena& data, std::vector<KVRef>& refs, WorkCounters& c);

/// Total serialized bytes of a run (payload + per-record framing).
double run_bytes(const ArenaRun& run);
double run_bytes(const RunView& run);

/// True when the run is non-decreasing by key.
bool is_sorted_run(const ArenaRun& run);

/// Streaming k-way merge + group iterator over sorted segments: the
/// reduce side's view of the shuffle. Pops records in globally sorted
/// order and batches equal keys into one group per next() call —
/// without materializing the merged run, so reduce values are views
/// straight into the map-output arenas. The cursor heap charges
/// `compares` identically to merge_runs over the same segments.
class GroupIterator {
 public:
  /// `segments` must outlive the iterator (their arenas back every
  /// view handed out). Empty segments are skipped.
  GroupIterator(const std::vector<RunView>& segments, WorkCounters& c);

  /// Advances to the next key group. `key` and the views in `values`
  /// point into the segment arenas and stay valid for the lifetime of
  /// the segments (not just the current group). Returns false when
  /// the segments are exhausted.
  bool next(std::string_view& key, std::vector<std::string_view>& values);

 private:
  struct Cursor {
    const RunView* run;
    std::size_t idx;
  };
  struct Compare {
    double* compares;
    bool operator()(const Cursor& a, const Cursor& b) const {
      ++*compares;
      // priority_queue is a max-heap; invert for ascending merge.
      return ref_key_less(*b.run->data, b.run->refs[b.idx], *a.run->data, a.run->refs[a.idx]);
    }
  };

  void advance(Cursor cur);

  std::priority_queue<Cursor, std::vector<Cursor>, Compare> heap_;
};

}  // namespace bvl::mr
