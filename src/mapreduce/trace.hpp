// Job execution trace: per-task logical-scale work counters, the
// input the timing/energy overlay (src/perf) consumes. A JobTrace is
// machine-independent — the same trace is priced on Xeon and Atom at
// every frequency, which is how one engine execution serves a whole
// characterization sweep.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mapreduce/counters.hpp"
#include "mapreduce/job.hpp"

namespace bvl::mr {

struct TaskTrace {
  WorkCounters counters;    ///< logical-scale counters (committed attempt)
  Bytes logical_bytes = 0;  ///< logical input bytes this task covered

  // Fault-recovery accounting (mapreduce/fault.hpp). All fields stay
  // at their neutral defaults on a fault-free run, so an inactive
  // FaultPlan leaves the trace bit-identical to the pre-fault engine.
  int attempts = 1;          ///< attempts consumed (committed + failed + backups)
  bool speculated = false;   ///< a speculative backup attempt was launched
  WorkCounters wasted;       ///< logical-scale work of failed/killed attempts
  double backoff_s = 0;      ///< retry backoff wait (model seconds)
  double time_factor = 1.0;  ///< completion time vs a fault-free attempt
};

struct JobTrace {
  std::string workload;
  JobConfig config;  ///< with num_reducers resolved
  std::vector<TaskTrace> map_tasks;
  std::vector<TaskTrace> reduce_tasks;
  WorkCounters setup;    ///< pre-job work (e.g. TeraSort sampling)
  WorkCounters cleanup;  ///< post-job bookkeeping

  /// True when the job's combiner saturated its key space (emits >>
  /// combined output): post-combine volumes were treated as
  /// scale-invariant during counter rescaling (see
  /// WorkCounters::scaled).
  bool combiner_saturated = false;

  /// Resolved executor width the engine ran with (>= 1; config's
  /// exec_threads = 0 resolves to the hardware thread count). Purely
  /// informational — trace contents never depend on it.
  int exec_threads_used = 1;

  std::size_t num_map_tasks() const { return map_tasks.size(); }
  std::size_t num_reduce_tasks() const { return reduce_tasks.size(); }

  /// Executor waves a phase needed: ceil(tasks / exec_threads_used).
  std::size_t map_exec_waves() const;
  std::size_t reduce_exec_waves() const;

  WorkCounters map_total() const;
  WorkCounters reduce_total() const;
  WorkCounters job_total() const;

  // Fault-recovery aggregates (all zero/neutral on a fault-free run).
  int total_attempts() const;         ///< Σ attempts over map + reduce tasks
  int speculative_backups() const;    ///< tasks that launched a backup
  double total_backoff_s() const;     ///< Σ retry backoff waits
  WorkCounters wasted_total() const;  ///< Σ wasted work over all tasks
};

}  // namespace bvl::mr
