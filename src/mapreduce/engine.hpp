// The MapReduce engine: plans input splits from the HDFS block size,
// executes every map task (really running the workload's code over
// generated data), shuffles, executes reduce tasks, and emits a
// logical-scale JobTrace.
//
// Scaled execution: for large logical inputs the engine executes
// input_size / sim_scale bytes per split with a proportionally scaled
// spill buffer, then rescales the counters (WorkCounters::scaled).
// Scaling both the data and the buffer preserves the job's structure
// exactly — spill count, merge fan-in, tasks, waves — while linear
// work rescales proportionally. Tests verify scaled and unscaled runs
// agree.
//
// Parallel execution: map tasks (then reduce tasks) run concurrently
// on a JobConfig::exec_threads-wide worker pool. Each task is a pure
// function of its index and writes only its own result slot; the
// engine merges results into the trace serially in task-index order,
// so the JobTrace is bit-identical regardless of thread count
// (verified by tests/mapreduce/test_engine_parallel.cpp).
//
// Fault tolerance: JobConfig::fault carries a deterministic FaultPlan
// (mapreduce/fault.hpp). Failed attempts re-execute the task on the
// same split with bounded retry + exponential backoff; stragglers get
// a Hadoop-style speculative backup (first finisher wins, the loser's
// partial work is charged as waste). Per-attempt accounting lands in
// TaskTrace (attempts, wasted, backoff_s, time_factor) for the perf
// overlay to price. Because tasks are deterministic, the final job
// output of a faulty run is byte-identical to the fault-free run, and
// an inactive plan leaves the trace bit-identical to the committed
// golden fixtures (tests/golden).
#pragma once

#include <functional>

#include "mapreduce/api.hpp"
#include "mapreduce/job.hpp"
#include "mapreduce/trace.hpp"

namespace bvl::mr {

class Engine {
 public:
  /// Floor on executed bytes per split, so tiny scaled splits still
  /// exercise real code.
  static constexpr Bytes kMinExecSplit = 4 * KB;
  static constexpr Bytes kMinExecBuffer = 2 * KB;

  /// Runs `def` under `cfg`; returns the logical-scale trace.
  /// If `output_sink` is set, job output records (executed scale) are
  /// streamed to it — examples use this to show real results.
  JobTrace run(JobDefinition& def, const JobConfig& cfg,
               const std::function<void(const KV&)>& output_sink = nullptr) const;
};

}  // namespace bvl::mr
