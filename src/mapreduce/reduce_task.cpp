#include "mapreduce/reduce_task.hpp"

#include <algorithm>

#include "mapreduce/merge.hpp"
#include "util/error.hpp"

namespace bvl::mr {

ReduceTaskResult run_reduce_task(const JobDefinition& def, std::vector<RunView> segments) {
  ReduceTaskResult result;
  WorkCounters& c = result.counters;

  auto reducer = def.make_reducer();
  require(reducer != nullptr, "run_reduce_task: job has no reducer");

  // Shuffle accounting: every segment byte crosses the network and is
  // staged on the reduce side before merging.
  double fetched = 0;
  for (const auto& seg : segments) fetched += run_bytes(seg);
  c.shuffle_bytes += fetched;
  c.merge_read_bytes += fetched;
  c.disk_seeks += static_cast<double>(segments.size());

  struct ArenaEmitter final : Emitter {
    ArenaRun* out;
    double* arena_bytes;
    void emit(std::string_view key, std::string_view value) override {
      *arena_bytes += static_cast<double>(key.size() + value.size());
      out->refs.push_back(out->data.append(key, value));
    }
  } emitter;
  emitter.out = &result.output;
  emitter.arena_bytes = &c.arena_bytes;

  // Stream sorted key groups off the segment cursor heap; values are
  // views into the map-output arenas, the reducer emits into this
  // task's output arena.
  GroupIterator groups(segments, c);
  std::string_view key;
  std::vector<std::string_view> values;
  while (groups.next(key, values)) {
    c.hash_ops += 1;  // grouping advance per distinct key
    reducer->reduce(key, values, emitter, c);
  }

  for (const auto& ref : result.output.refs) {
    c.output_records += 1;
    double b = static_cast<double>(ref.bytes());
    c.output_bytes += b;
    c.disk_write_bytes += b;  // HDFS output write
  }
  c.peak_run_bytes = std::max(c.peak_run_bytes, static_cast<double>(result.output.data.size()));
  return result;
}

}  // namespace bvl::mr
