#include "mapreduce/reduce_task.hpp"

#include "mapreduce/merge.hpp"
#include "util/error.hpp"

namespace bvl::mr {

ReduceTaskResult run_reduce_task(const JobDefinition& def,
                                 std::vector<std::vector<KV>> segments) {
  ReduceTaskResult result;
  WorkCounters& c = result.counters;

  auto reducer = def.make_reducer();
  require(reducer != nullptr, "run_reduce_task: job has no reducer");

  // Shuffle accounting: every segment byte crosses the network and is
  // staged on the reduce side before merging.
  double fetched = 0;
  for (const auto& seg : segments) fetched += run_bytes(seg);
  c.shuffle_bytes += fetched;
  c.merge_read_bytes += fetched;
  c.disk_seeks += static_cast<double>(segments.size());

  std::vector<KV> merged = merge_runs(std::move(segments), c);

  struct VecEmitter final : Emitter {
    std::vector<KV>* out;
    void emit(std::string key, std::string value) override {
      out->push_back({std::move(key), std::move(value)});
    }
  } emitter;
  emitter.out = &result.output;

  std::size_t i = 0;
  while (i < merged.size()) {
    std::size_t j = i + 1;
    while (j < merged.size() && merged[j].key == merged[i].key) ++j;
    std::vector<std::string> values;
    values.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) values.push_back(std::move(merged[k].value));
    c.hash_ops += 1;  // grouping advance per distinct key
    reducer->reduce(merged[i].key, values, emitter, c);
    i = j;
  }

  for (const auto& kv : result.output) {
    c.output_records += 1;
    double b = static_cast<double>(kv.bytes());
    c.output_bytes += b;
    c.disk_write_bytes += b;  // HDFS output write
  }
  return result;
}

}  // namespace bvl::mr
