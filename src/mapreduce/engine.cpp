#include "mapreduce/engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "hdfs/dfs.hpp"
#include "mapreduce/map_task.hpp"
#include "mapreduce/merge.hpp"
#include "mapreduce/reduce_task.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace bvl::mr {

namespace {

/// log-ratio correction for comparator counts: sorting N records in
/// buffer-sized chunks costs ~N log2(B); at executed scale the chunk
/// is B/s, so scaled comparisons need the log2(B)/log2(B/s) factor.
double log_adjust_for(Bytes logical_buffer, Bytes exec_buffer) {
  double lo = std::log2(std::max<double>(4.0, static_cast<double>(exec_buffer)));
  double hi = std::log2(std::max<double>(4.0, static_cast<double>(logical_buffer)));
  return std::max(1.0, hi / lo);
}

std::uint64_t task_seed(std::uint64_t job_seed, std::uint64_t block_id) {
  // SplitMix64-style mix so adjacent blocks decorrelate.
  std::uint64_t z = job_seed + 0x9e3779b97f4a7c15ULL * (block_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

JobTrace Engine::run(JobDefinition& def, const JobConfig& cfg,
                     const std::function<void(const KV&)>& output_sink) const {
  require(cfg.input_size > 0, "Engine::run: zero input size");
  require(cfg.block_size > 0, "Engine::run: zero block size");
  require(cfg.sim_scale >= 1.0, "Engine::run: sim_scale must be >= 1");
  require(cfg.spill_buffer > 0, "Engine::run: zero spill buffer");
  require(cfg.exec_threads >= 0, "Engine::run: negative exec_threads");

  JobTrace trace;
  trace.workload = def.name();
  trace.config = cfg;

  // Fault machinery (mapreduce/fault.hpp). An inactive plan (the
  // default) keeps every fault branch below dead: each task runs its
  // single attempt exactly as before and all TaskTrace fault fields
  // stay at their neutral defaults, so the trace is bit-identical to
  // the pre-fault engine (tests/golden enforces this). With an active
  // plan, failed attempts really re-execute the task — the work is
  // done and discarded, like a died Hadoop attempt — and the committed
  // attempt is the final execution (identical output by task
  // determinism, which is also what makes speculation safe).
  const FaultSchedule fsched(cfg.fault);
  const bool faults = fsched.active();

  // Executor pool, created lazily on the first multi-task phase and
  // shared by the map and reduce waves. Tasks are pure functions of
  // their index (the JobDefinition is only read), so executing them
  // concurrently and merging the per-task results in task-index order
  // below yields a trace that is bit-identical at any width.
  const int exec_threads = ThreadPool::resolve(cfg.exec_threads);
  trace.exec_threads_used = exec_threads;
  std::unique_ptr<ThreadPool> pool;
  auto run_tasks = [&](std::size_t n, const std::function<void(std::size_t)>& task) {
    if (exec_threads > 1 && n > 1) {
      if (!pool) pool = std::make_unique<ThreadPool>(exec_threads);
      pool->parallel_for(n, task);
    } else {
      for (std::size_t i = 0; i < n; ++i) task(i);
    }
  };

  const bool map_only = cfg.num_reducers == 0 || def.make_reducer() == nullptr;
  int reducers = map_only ? 0 : (cfg.num_reducers > 0 ? cfg.num_reducers : def.default_reducers());
  trace.config.num_reducers = reducers;
  trace.config.compress_map_output = cfg.compress_map_output || def.compress_map_output();

  auto blocks = hdfs::plan_blocks(cfg.input_size, cfg.block_size);
  Bytes exec_buffer =
      std::max<Bytes>(kMinExecBuffer,
                      static_cast<Bytes>(static_cast<double>(cfg.spill_buffer) / cfg.sim_scale));
  double log_adj = log_adjust_for(cfg.spill_buffer, exec_buffer);

  // Pre-job preparation (TeraSort sampling). Executed at sample scale;
  // its work is small and charged unscaled to the setup phase.
  {
    Bytes sample_bytes = std::max<Bytes>(
        kMinExecSplit,
        static_cast<Bytes>(static_cast<double>(std::min(cfg.block_size, cfg.input_size)) /
                           cfg.sim_scale));
    def.prepare(sample_bytes, task_seed(cfg.seed, 0xABCDEF), trace.setup);
  }

  log_info("engine: job=", trace.workload, " blocks=", blocks.size(), " reducers=", reducers,
           " sim_scale=", cfg.sim_scale, " exec_threads=", exec_threads);

  // ---- Map phase ----
  const bool has_combiner = cfg.use_combiner && def.make_combiner() != nullptr;
  // Sealed map-output runs. These arenas back the shuffle's RunView
  // segments, so they must stay alive until the reduce phase is done.
  std::vector<ArenaRun> map_outputs;
  map_outputs.reserve(blocks.size());
  double total_exec_input = 0;
  double total_logical_input = 0;

  // Execute every map task concurrently; each worker touches only its
  // own result slot. The trace-facing bookkeeping below runs serially
  // in block order so counters, sink calls and saturation flags are
  // merged deterministically.
  std::vector<MapTaskResult> map_results(blocks.size());
  std::vector<TaskFaultLog> map_logs(blocks.size());
  run_tasks(blocks.size(), [&](std::size_t i) {
    const auto& blk = blocks[i];
    Bytes exec_bytes = std::max<Bytes>(
        kMinExecSplit, static_cast<Bytes>(static_cast<double>(blk.length) / cfg.sim_scale));
    // Bounded retry: walk the attempt outcomes (throws when the
    // budget is exhausted), then execute one real run per attempt on
    // the same split/seed — earlier runs are the died attempts' wasted
    // work, the last one is committed.
    if (faults) map_logs[i] = fsched.run_attempts(TaskPhase::kMap, i);
    for (int a = 0; a < map_logs[i].attempts; ++a) {
      map_results[i] = run_map_task(def, blk.id, exec_bytes, exec_buffer, cfg.use_combiner,
                                    task_seed(cfg.seed, blk.id));
    }
  });
  if (faults) fsched.resolve_speculation(TaskPhase::kMap, map_logs);

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto& blk = blocks[i];
    MapTaskResult& r = map_results[i];

    // Map-side partitioning cost (one hash per surviving output pair).
    if (!map_only) r.counters.hash_ops += static_cast<double>(r.output.size());

    // Map-only jobs write their merged output straight to HDFS. When
    // the task spilled more than once, the collector's final merge
    // pass already wrote the merged file (charged in close()), and
    // committing it to HDFS is a rename — don't charge the volume
    // twice.
    if (map_only) {
      double out_bytes = run_bytes(r.output);
      r.counters.output_records += static_cast<double>(r.output.size());
      r.counters.output_bytes += out_bytes;
      if (r.counters.spills <= 1) r.counters.disk_write_bytes += out_bytes;
      if (output_sink) {
        for (std::size_t k = 0; k < r.output.size(); ++k)
          output_sink(KV{std::string(r.output.key(k)), std::string(r.output.value(k))});
      }
    }

    double exec_in = std::max(1.0, r.counters.input_bytes);
    double task_scale = std::max(1.0, static_cast<double>(blk.length) / exec_in);
    total_exec_input += exec_in;
    total_logical_input += static_cast<double>(blk.length);

    // Combiner saturation: when the combiner collapses the emit
    // stream several-fold at executed scale, the key space is
    // exhausted and a larger (logical) window collapses to the same
    // combined output — post-combine volumes must not scale.
    bool saturated = has_combiner &&
                     r.counters.emits >= 3.0 * std::max(1.0, static_cast<double>(r.output.size()));
    trace.combiner_saturated = trace.combiner_saturated || saturated;

    TaskTrace t;
    t.counters = r.counters.scaled(task_scale, log_adj, saturated);
    t.logical_bytes = blk.length;
    const TaskFaultLog& fl = map_logs[i];
    t.attempts = fl.attempts;
    t.speculated = fl.speculated;
    t.backoff_s = fl.backoff_s;
    t.time_factor = fl.time_factor;
    if (fl.wasted_fraction > 0) t.wasted = t.counters.scaled_uniform(fl.wasted_fraction);
    trace.map_tasks.push_back(std::move(t));
    if (!map_only) map_outputs.push_back(std::move(r.output));
  }

  // ---- Shuffle + reduce phase ----
  if (!map_only) {
    double global_scale = std::max(1.0, total_logical_input / std::max(1.0, total_exec_input));

    // Route each map output pair to its reduce partition: only the
    // 16-byte refs move, each partition's segment stays a sorted view
    // into the producing map task's arena.
    std::vector<std::vector<RunView>> segments(static_cast<std::size_t>(reducers));
    for (auto& seg : segments) {
      seg.resize(map_outputs.size());
      for (std::size_t m = 0; m < map_outputs.size(); ++m) seg[m].data = &map_outputs[m].data;
    }
    for (std::size_t m = 0; m < map_outputs.size(); ++m) {
      for (const KVRef& ref : map_outputs[m].refs) {
        int p = def.partition(map_outputs[m].data.key(ref), reducers);
        require(p >= 0 && p < reducers, "Engine::run: partition out of range");
        segments[static_cast<std::size_t>(p)][m].refs.push_back(ref);
      }
    }

    // A saturated combiner means the reduce side sees the same data
    // at any scale: its counters are already logical.
    double reduce_scale = trace.combiner_saturated ? 1.0 : global_scale;
    double reduce_adj = trace.combiner_saturated ? 1.0 : log_adj;

    // Reduce tasks are independent once the segments are routed; run
    // them on the same pool, then commit results in partition order.
    std::vector<ReduceTaskResult> reduce_results(static_cast<std::size_t>(reducers));
    std::vector<TaskFaultLog> reduce_logs(static_cast<std::size_t>(reducers));
    run_tasks(static_cast<std::size_t>(reducers), [&](std::size_t r) {
      if (faults) reduce_logs[r] = fsched.run_attempts(TaskPhase::kReduce, r);
      // Non-final attempts re-fetch a copy of the shuffled segments
      // (a restarted reducer re-pulls its map outputs); the committed
      // attempt consumes them.
      for (int a = 0; a + 1 < reduce_logs[r].attempts; ++a) {
        auto refetched = segments[r];
        reduce_results[r] = run_reduce_task(def, std::move(refetched));
      }
      reduce_results[r] = run_reduce_task(def, std::move(segments[r]));
    });
    if (faults) fsched.resolve_speculation(TaskPhase::kReduce, reduce_logs);

    for (int r = 0; r < reducers; ++r) {
      ReduceTaskResult& res = reduce_results[static_cast<std::size_t>(r)];
      if (output_sink) {
        for (std::size_t k = 0; k < res.output.size(); ++k)
          output_sink(KV{std::string(res.output.key(k)), std::string(res.output.value(k))});
      }
      TaskTrace t;
      t.counters = res.counters.scaled(reduce_scale, reduce_adj);
      t.logical_bytes = static_cast<Bytes>(t.counters.shuffle_bytes);
      const TaskFaultLog& fl = reduce_logs[static_cast<std::size_t>(r)];
      t.attempts = fl.attempts;
      t.speculated = fl.speculated;
      t.backoff_s = fl.backoff_s;
      t.time_factor = fl.time_factor;
      if (fl.wasted_fraction > 0) t.wasted = t.counters.scaled_uniform(fl.wasted_fraction);
      trace.reduce_tasks.push_back(std::move(t));
    }
  }

  // Cleanup bookkeeping: committing output, deleting temp spills. The
  // wall-clock cost is modeled in perf from DfsConfig; here we only
  // note the structural seeks.
  trace.cleanup.disk_seeks = static_cast<double>(trace.map_tasks.size() + trace.reduce_tasks.size());
  return trace;
}

}  // namespace bvl::mr
