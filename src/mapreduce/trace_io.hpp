// Canonical JobTrace text serialization, the format of the committed
// golden fixtures under tests/golden/.
//
// One `name = value` line per field, in a fixed order; doubles are
// printed with %.17g so every IEEE-754 value round-trips exactly — a
// byte-equal serialization means a bit-identical trace. The golden
// regression suite diffs live serializations against the fixtures
// line by line (first_divergence) to guard the invariant that a
// fault-free engine run never drifts.
#pragma once

#include <string>

#include "mapreduce/trace.hpp"

namespace bvl::mr {

/// Serializes `trace` to the canonical line format. Excludes
/// exec_threads_used (informational; legitimately varies) and the
/// FaultPlan (input, not output — its effects are in the task fields).
/// `include_footprint` additionally emits the diagnostic allocation
/// counters (arena_bytes, peak_run_bytes); it defaults off so the
/// committed golden fixtures never depend on arena tuning.
std::string to_text(const JobTrace& trace, bool include_footprint = false);

/// Compares two serializations line by line; returns an empty string
/// when equal, otherwise a human-readable description of the first
/// differing line ("line N: expected '...' got '...'").
std::string first_divergence(const std::string& expected, const std::string& actual);

}  // namespace bvl::mr
