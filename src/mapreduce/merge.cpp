#include "mapreduce/merge.hpp"

#include <algorithm>

namespace bvl::mr {

namespace {

/// One comparator invocation deciding a duel between two live slots.
/// The lower slot index wins ties, which makes every consumer of the
/// tree stable in run order: the higher slot wins only when its key is
/// strictly smaller.
inline bool higher_slot_wins(const LoserTree::Slot& lo, const LoserTree::Slot& hi) {
  return ref_key_less(*hi.data, (*hi.refs)[hi.idx], *lo.data, (*lo.refs)[lo.idx]);
}

}  // namespace

LoserTree::LoserTree(std::vector<Slot> slots, std::uint64_t* compares)
    : slots_(std::move(slots)), compares_(compares) {
  m_ = 1;
  while (m_ < slots_.size()) m_ *= 2;
  losers_.assign(m_, 0);
  winner_ = m_ == 1 ? 0 : init_node(1);
}

std::size_t LoserTree::duel(std::size_t a, std::size_t b) {
  // Exhausted and padding slots lose without a comparator call —
  // there is no key to compare.
  if (!valid(b)) return a;
  if (!valid(a)) return b;
  ++*compares_;
  std::size_t lo = std::min(a, b);
  std::size_t hi = std::max(a, b);
  return higher_slot_wins(slots_[lo], slots_[hi]) ? hi : lo;
}

std::size_t LoserTree::init_node(std::size_t node) {
  if (node >= m_) return node - m_;  // leaf: slot id (possibly padding)
  std::size_t w1 = init_node(2 * node);
  std::size_t w2 = init_node(2 * node + 1);
  std::size_t w = duel(w1, w2);
  losers_[node] = static_cast<std::uint32_t>(w == w1 ? w2 : w1);
  return w;
}

void LoserTree::replay() {
  std::size_t w = winner_;
  for (std::size_t node = (m_ + w) / 2; node >= 1; node /= 2) {
    std::size_t other = losers_[node];
    std::size_t nw = duel(w, other);
    if (nw != w) {
      losers_[node] = static_cast<std::uint32_t>(w);
      w = nw;
    }
  }
  winner_ = w;
}

void LoserTree::pop_advance() {
  ++slots_[winner_].idx;
  if (m_ > 1) replay();
}

ArenaRun merge_runs(std::vector<ArenaRun> runs, WorkCounters& c) {
  // Drop empty runs up front.
  runs.erase(std::remove_if(runs.begin(), runs.end(),
                            [](const ArenaRun& r) { return r.empty(); }),
             runs.end());
  if (runs.empty()) return {};
  if (runs.size() == 1) return std::move(runs.front());

  // Accumulate the duel count in a local so the merge's inner loop
  // isn't serialized on a read-modify-write of the shared double.
  std::uint64_t compares = 0;
  std::vector<LoserTree::Slot> slots;
  slots.reserve(runs.size());
  std::size_t total = 0;
  std::size_t total_payload = 0;
  for (const auto& r : runs) {
    total += r.size();
    total_payload += r.data.size();
    slots.push_back({&r.data, &r.refs, 0});
  }
  LoserTree tree(std::move(slots), &compares);

  ArenaRun out;
  out.data.reserve(total_payload);
  out.refs.reserve(total);
  while (!tree.empty()) {
    const LoserTree::Slot& w = tree.winner();
    out.refs.push_back(out.data.append(*w.data, (*w.refs)[w.idx]));
    tree.pop_advance();
  }
  c.compares += static_cast<double>(compares);
  c.arena_bytes += static_cast<double>(out.data.size());
  return out;
}

ArenaRun merge_runs_reference(const std::vector<ArenaRun>& runs) {
  std::vector<std::size_t> pos(runs.size(), 0);
  ArenaRun out;
  for (;;) {
    std::size_t best = runs.size();
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (pos[r] >= runs[r].size()) continue;
      if (best == runs.size() ||
          ref_key_less(runs[r].data, runs[r].refs[pos[r]], runs[best].data,
                       runs[best].refs[pos[best]])) {
        best = r;  // strictly smaller key, or first live run (lowest index keeps ties)
      }
    }
    if (best == runs.size()) return out;
    out.refs.push_back(out.data.append(runs[best].data, runs[best].refs[pos[best]]));
    ++pos[best];
  }
}

void counting_sort_refs(const KVArena& data, std::vector<KVRef>& refs, WorkCounters& c) {
  // Accumulate the compare count in a local so the sort's inner loop
  // isn't serialized on a read-modify-write of the shared counter;
  // the final tally is identical.
  std::uint64_t compares = 0;
  std::stable_sort(refs.begin(), refs.end(), [&data, &compares](const KVRef& a, const KVRef& b) {
    ++compares;
    return ref_key_less(data, a, data, b);
  });
  c.compares += static_cast<double>(compares);
}

void counting_sort_run(ArenaRun& run, WorkCounters& c) { counting_sort_refs(run.data, run.refs, c); }

namespace {
double refs_bytes(const std::vector<KVRef>& refs) {
  double b = 0;
  for (const auto& r : refs) b += static_cast<double>(r.bytes());
  return b;
}

std::vector<LoserTree::Slot> segment_slots(const std::vector<RunView>& segments) {
  std::vector<LoserTree::Slot> slots;
  slots.reserve(segments.size());
  for (const auto& seg : segments) {
    if (!seg.empty()) slots.push_back({seg.data, &seg.refs, 0});
  }
  return slots;
}
}  // namespace

double run_bytes(const ArenaRun& run) { return refs_bytes(run.refs); }
double run_bytes(const RunView& run) { return refs_bytes(run.refs); }

bool is_sorted_run(const ArenaRun& run) {
  for (std::size_t i = 1; i < run.size(); ++i) {
    if (run.key(i) < run.key(i - 1)) return false;
  }
  return true;
}

GroupIterator::GroupIterator(const std::vector<RunView>& segments, WorkCounters& c)
    : tree_(segment_slots(segments), &compares_), sink_(&c.compares) {}

GroupIterator::~GroupIterator() {
  *sink_ += static_cast<double>(compares_);
  compares_ = 0;
}

bool GroupIterator::next(std::string_view& key, std::vector<std::string_view>& values) {
  values.clear();
  if (tree_.empty()) {
    // Flush the duel tally as soon as the caller observes exhaustion,
    // so counters read correctly while the iterator is still alive.
    *sink_ += static_cast<double>(compares_);
    compares_ = 0;
    return false;
  }
  const LoserTree::Slot& w = tree_.winner();
  const KVArena& cur_data = *w.data;
  const KVRef cur_ref = (*w.refs)[w.idx];
  key = cur_data.key(cur_ref);
  values.push_back(cur_data.value(cur_ref));
  tree_.pop_advance();
  // Gather the rest of the group: equality checks against the tree
  // winner are plain view compares, not charged comparator work (the
  // original merge-then-group path's grouping scan was uncharged
  // too).
  while (!tree_.empty()) {
    const LoserTree::Slot& top = tree_.winner();
    if (!ref_key_eq(*top.data, (*top.refs)[top.idx], cur_data, cur_ref)) break;
    values.push_back(top.data->value((*top.refs)[top.idx]));
    tree_.pop_advance();
  }
  return true;
}

}  // namespace bvl::mr
