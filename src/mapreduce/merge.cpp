#include "mapreduce/merge.hpp"

#include <algorithm>

namespace bvl::mr {

ArenaRun merge_runs(std::vector<ArenaRun> runs, WorkCounters& c) {
  // Drop empty runs up front.
  runs.erase(std::remove_if(runs.begin(), runs.end(),
                            [](const ArenaRun& r) { return r.empty(); }),
             runs.end());
  if (runs.empty()) return {};
  if (runs.size() == 1) return std::move(runs.front());

  struct Cursor {
    const ArenaRun* run;
    std::size_t idx;
  };
  std::uint64_t compares = 0;
  auto cmp = [&compares](const Cursor& a, const Cursor& b) {
    ++compares;
    // priority_queue is a max-heap; invert for ascending merge.
    return ref_key_less(b.run->data, b.run->refs[b.idx], a.run->data, a.run->refs[a.idx]);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  std::size_t total = 0;
  std::size_t total_payload = 0;
  for (const auto& r : runs) {
    total += r.size();
    total_payload += r.data.size();
    heap.push({&r, 0});
  }

  ArenaRun out;
  out.data.reserve(total_payload);
  out.refs.reserve(total);
  while (!heap.empty()) {
    Cursor cur = heap.top();
    heap.pop();
    out.refs.push_back(out.data.append(cur.run->data, cur.run->refs[cur.idx]));
    if (cur.idx + 1 < cur.run->size()) heap.push({cur.run, cur.idx + 1});
  }
  c.compares += static_cast<double>(compares);
  c.arena_bytes += static_cast<double>(out.data.size());
  return out;
}

void counting_sort_refs(const KVArena& data, std::vector<KVRef>& refs, WorkCounters& c) {
  // Accumulate the compare count in a local so the sort's inner loop
  // isn't serialized on a read-modify-write of the shared counter;
  // the final tally is identical.
  std::uint64_t compares = 0;
  std::stable_sort(refs.begin(), refs.end(), [&data, &compares](const KVRef& a, const KVRef& b) {
    ++compares;
    return ref_key_less(data, a, data, b);
  });
  c.compares += static_cast<double>(compares);
}

void counting_sort_run(ArenaRun& run, WorkCounters& c) { counting_sort_refs(run.data, run.refs, c); }

namespace {
double refs_bytes(const std::vector<KVRef>& refs) {
  double b = 0;
  for (const auto& r : refs) b += static_cast<double>(r.bytes());
  return b;
}
}  // namespace

double run_bytes(const ArenaRun& run) { return refs_bytes(run.refs); }
double run_bytes(const RunView& run) { return refs_bytes(run.refs); }

bool is_sorted_run(const ArenaRun& run) {
  for (std::size_t i = 1; i < run.size(); ++i) {
    if (run.key(i) < run.key(i - 1)) return false;
  }
  return true;
}

GroupIterator::GroupIterator(const std::vector<RunView>& segments, WorkCounters& c)
    : heap_(Compare{&c.compares}) {
  for (const auto& seg : segments) {
    if (!seg.empty()) heap_.push({&seg, 0});
  }
}

void GroupIterator::advance(Cursor cur) {
  if (cur.idx + 1 < cur.run->size()) heap_.push({cur.run, cur.idx + 1});
}

bool GroupIterator::next(std::string_view& key, std::vector<std::string_view>& values) {
  values.clear();
  if (heap_.empty()) return false;
  Cursor cur = heap_.top();
  heap_.pop();
  const KVArena& cur_data = *cur.run->data;
  const KVRef cur_ref = cur.run->refs[cur.idx];
  key = cur_data.key(cur_ref);
  values.push_back(cur_data.value(cur_ref));
  advance(cur);
  // Gather the rest of the group: equality checks against the heap
  // top are plain view compares, not charged comparator work (the
  // original merge-then-group path's grouping scan was uncharged
  // too).
  while (!heap_.empty()) {
    Cursor top = heap_.top();
    if (!ref_key_eq(*top.run->data, top.run->refs[top.idx], cur_data, cur_ref)) break;
    heap_.pop();
    values.push_back(top.run->value(top.idx));
    advance(top);
  }
  return true;
}

}  // namespace bvl::mr
