#include "mapreduce/merge.hpp"

#include <algorithm>
#include <queue>

namespace bvl::mr {

std::vector<KV> merge_runs(std::vector<std::vector<KV>> runs, WorkCounters& c) {
  // Drop empty runs up front.
  runs.erase(std::remove_if(runs.begin(), runs.end(),
                            [](const std::vector<KV>& r) { return r.empty(); }),
             runs.end());
  if (runs.empty()) return {};
  if (runs.size() == 1) return std::move(runs.front());

  struct Cursor {
    std::vector<KV>* run;
    std::size_t idx;
  };
  auto* compares = &c.compares;
  auto cmp = [compares](const Cursor& a, const Cursor& b) {
    ++*compares;
    // priority_queue is a max-heap; invert for ascending merge.
    return (*a.run)[a.idx].key > (*b.run)[b.idx].key;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  std::size_t total = 0;
  for (auto& r : runs) {
    total += r.size();
    heap.push({&r, 0});
  }

  std::vector<KV> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor cur = heap.top();
    heap.pop();
    // The runs are consumed: move the winning record out instead of
    // copying its owning strings.
    out.push_back(std::move((*cur.run)[cur.idx]));
    if (cur.idx + 1 < cur.run->size()) heap.push({cur.run, cur.idx + 1});
  }
  return out;
}

void counting_sort_run(std::vector<KV>& run, WorkCounters& c) {
  auto* compares = &c.compares;
  std::stable_sort(run.begin(), run.end(), [compares](const KV& a, const KV& b) {
    ++*compares;
    return a.key < b.key;
  });
}

double run_bytes(const std::vector<KV>& run) {
  double b = 0;
  for (const auto& kv : run) b += static_cast<double>(kv.bytes());
  return b;
}

bool is_sorted_run(const std::vector<KV>& run) {
  return std::is_sorted(run.begin(), run.end(), kv_key_less);
}

}  // namespace bvl::mr
