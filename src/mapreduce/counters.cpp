#include "mapreduce/counters.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bvl::mr {

void WorkCounters::add(const WorkCounters& o) {
  input_records += o.input_records;
  input_bytes += o.input_bytes;
  output_records += o.output_records;
  output_bytes += o.output_bytes;
  emits += o.emits;
  emit_bytes += o.emit_bytes;
  compares += o.compares;
  hash_ops += o.hash_ops;
  token_ops += o.token_ops;
  compute_units += o.compute_units;
  spills += o.spills;
  spill_bytes += o.spill_bytes;
  merge_read_bytes += o.merge_read_bytes;
  disk_read_bytes += o.disk_read_bytes;
  disk_write_bytes += o.disk_write_bytes;
  disk_seeks += o.disk_seeks;
  shuffle_bytes += o.shuffle_bytes;
  arena_bytes += o.arena_bytes;
  // Tasks do not share buffers, so the aggregate peak is the largest
  // single-task footprint, not a sum.
  peak_run_bytes = std::max(peak_run_bytes, o.peak_run_bytes);
}

WorkCounters WorkCounters::scaled(double s, double log_adjust, bool combiner_saturated) const {
  require(s >= 1.0, "WorkCounters::scaled: scale must be >= 1");
  require(log_adjust >= 1.0, "WorkCounters::scaled: log_adjust must be >= 1");
  WorkCounters c = *this;
  c.input_records *= s;
  c.input_bytes *= s;
  c.emits *= s;
  c.emit_bytes *= s;
  c.compares *= s * log_adjust;
  c.hash_ops *= s;
  c.token_ops *= s;
  c.compute_units *= s;
  c.disk_read_bytes *= s;
  c.arena_bytes *= s;
  c.peak_run_bytes *= s;
  // spills, disk_seeks: structural, unchanged.
  if (!combiner_saturated) {
    c.output_records *= s;
    c.output_bytes *= s;
    c.spill_bytes *= s;
    c.merge_read_bytes *= s;
    c.disk_write_bytes *= s;
    c.shuffle_bytes *= s;
  }
  return c;
}

WorkCounters WorkCounters::scaled_uniform(double f) const {
  require(f >= 0, "WorkCounters::scaled_uniform: negative factor");
  WorkCounters c = *this;
  c.input_records *= f;
  c.input_bytes *= f;
  c.output_records *= f;
  c.output_bytes *= f;
  c.emits *= f;
  c.emit_bytes *= f;
  c.compares *= f;
  c.hash_ops *= f;
  c.token_ops *= f;
  c.compute_units *= f;
  c.spills *= f;
  c.spill_bytes *= f;
  c.merge_read_bytes *= f;
  c.disk_read_bytes *= f;
  c.disk_write_bytes *= f;
  c.disk_seeks *= f;
  c.shuffle_bytes *= f;
  c.arena_bytes *= f;
  c.peak_run_bytes *= f;
  return c;
}

}  // namespace bvl::mr
