// Record and key/value types flowing through the MapReduce engine.
#pragma once

#include <cstdint>
#include <string>

namespace bvl::mr {

/// An input record as produced by a record reader: key is the
/// position-like key (e.g. line offset), value is the payload line/row.
struct Record {
  std::string key;
  std::string value;

  std::size_t bytes() const { return key.size() + value.size(); }
};

/// Intermediate and output key/value pair.
struct KV {
  std::string key;
  std::string value;

  /// Serialized footprint: payload plus the framing Hadoop's
  /// IFile-style containers add per pair.
  std::size_t bytes() const { return key.size() + value.size() + kFramingBytes; }

  static constexpr std::size_t kFramingBytes = 8;
};

inline bool kv_key_less(const KV& a, const KV& b) { return a.key < b.key; }

}  // namespace bvl::mr
