// Record and key/value types flowing through the MapReduce engine.
//
// The intermediate KV path is zero-copy: mappers and combiners emit
// string_views that are appended to a task-local KVArena
// (mapreduce/arena.hpp), and everything downstream — sort, spill,
// merge, shuffle, reduce grouping — manipulates compact KVRef index
// entries instead of owning strings, exactly as Hadoop's
// MapOutputBuffer sorts a metadata index over one contiguous
// io.sort.mb buffer. The owning KV struct survives only at the edges:
// final job output streamed to an output_sink, and tests.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace bvl::mr {

/// An input record as produced by a record reader: key is the
/// position-like key (e.g. line offset), value is the payload
/// line/row. Views point into buffers owned by the SplitSource and
/// stay valid until the next `next()` call — mappers must emit (the
/// arena copies the bytes) rather than retain them.
struct Record {
  std::string_view key;
  std::string_view value;

  std::size_t bytes() const { return key.size() + value.size(); }
};

/// Owning key/value pair: job output records as delivered to an
/// output_sink. Not used on the intermediate path.
struct KV {
  std::string key;
  std::string value;

  /// Serialized footprint: payload plus the framing Hadoop's
  /// IFile-style containers add per pair.
  std::size_t bytes() const { return key.size() + value.size() + kFramingBytes; }

  static constexpr std::size_t kFramingBytes = 8;
};

/// Compact index entry for one record inside a KVArena. The payload
/// is stored contiguously as key bytes then value bytes at `key_off`,
/// so the value offset is implied (key_off + key_len). This is what
/// the sort and merge actually move, and its size is what the sort's
/// memory traffic scales with — 16 bytes, the same METASIZE Hadoop's
/// MapOutputBuffer spends per record in its kvmeta index. The packing
/// caps one arena at 4 GiB of payload and one record at 64 KiB of key
/// and 64 KiB of value; KVArena::append enforces both loudly.
///
/// `prefix` caches the key's first eight bytes big-endian, zero-padded
/// (Hadoop's MapOutputBuffer keeps the same kind of prefix in its sort
/// metadata): differing prefixes decide an order comparison without
/// touching arena memory, zero-padding is safe because a padding byte
/// is the minimum value — it can only tie against a real NUL — and a
/// key of at most eight bytes is decided entirely by (prefix, len), so
/// short-key workloads sort without dereferencing payloads at all.
struct KVRef {
  std::uint64_t prefix = 0;
  std::uint32_t key_off = 0;
  std::uint16_t key_len = 0;
  std::uint16_t val_len = 0;

  std::uint32_t val_off() const { return key_off + key_len; }

  /// Serialized footprint, matching KV::bytes().
  std::size_t bytes() const {
    return static_cast<std::size_t>(key_len) + val_len + KV::kFramingBytes;
  }

  static std::uint64_t prefix_of(std::string_view key) {
    if (key.size() >= 8) {
      // Fixed-size memcpy compiles to a single unaligned load.
      std::uint64_t p;
      std::memcpy(&p, key.data(), 8);
      if constexpr (std::endian::native == std::endian::little) {
#if defined(__GNUC__) || defined(__clang__)
        p = __builtin_bswap64(p);
#else
        std::uint64_t r = 0;
        for (int i = 0; i < 8; ++i) r = (r << 8) | ((p >> (8 * i)) & 0xff);
        p = r;
#endif
      }
      return p;
    }
    // Short key: assemble big-endian directly, high byte first.
    std::uint64_t p = 0;
    for (std::size_t i = 0; i < key.size(); ++i) {
      p |= static_cast<std::uint64_t>(static_cast<unsigned char>(key[i])) << (56 - 8 * i);
    }
    return p;
  }
};

static_assert(sizeof(KVRef) == 16, "KVRef must stay at Hadoop's METASIZE");

inline bool kv_key_less(const KV& a, const KV& b) { return a.key < b.key; }

}  // namespace bvl::mr
