#include "mapreduce/trace_io.hpp"

#include <cstdio>
#include <sstream>
#include <string>

namespace bvl::mr {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void put(std::ostringstream& out, const std::string& name, const std::string& v) {
  out << name << " = " << v << "\n";
}

void put(std::ostringstream& out, const std::string& name, double v) { put(out, name, fmt(v)); }

void put(std::ostringstream& out, const std::string& name, std::uint64_t v) {
  put(out, name, std::to_string(v));
}

void put(std::ostringstream& out, const std::string& name, int v) {
  put(out, name, std::to_string(v));
}

void put(std::ostringstream& out, const std::string& name, bool v) {
  put(out, name, std::string(v ? "1" : "0"));
}

void put_counters(std::ostringstream& out, const std::string& prefix, const WorkCounters& c,
                  bool include_footprint) {
  put(out, prefix + ".input_records", c.input_records);
  put(out, prefix + ".input_bytes", c.input_bytes);
  put(out, prefix + ".output_records", c.output_records);
  put(out, prefix + ".output_bytes", c.output_bytes);
  put(out, prefix + ".emits", c.emits);
  put(out, prefix + ".emit_bytes", c.emit_bytes);
  put(out, prefix + ".compares", c.compares);
  put(out, prefix + ".hash_ops", c.hash_ops);
  put(out, prefix + ".token_ops", c.token_ops);
  put(out, prefix + ".compute_units", c.compute_units);
  put(out, prefix + ".spills", c.spills);
  put(out, prefix + ".spill_bytes", c.spill_bytes);
  put(out, prefix + ".merge_read_bytes", c.merge_read_bytes);
  put(out, prefix + ".disk_read_bytes", c.disk_read_bytes);
  put(out, prefix + ".disk_write_bytes", c.disk_write_bytes);
  put(out, prefix + ".disk_seeks", c.disk_seeks);
  put(out, prefix + ".shuffle_bytes", c.shuffle_bytes);
  // Diagnostic footprint fields: emitted only on request so the
  // committed golden fixtures stay byte-stable across arena tuning.
  if (include_footprint) {
    put(out, prefix + ".arena_bytes", c.arena_bytes);
    put(out, prefix + ".peak_run_bytes", c.peak_run_bytes);
  }
}

void put_task(std::ostringstream& out, const std::string& prefix, const TaskTrace& t,
              bool include_footprint) {
  put(out, prefix + ".logical_bytes", static_cast<std::uint64_t>(t.logical_bytes));
  put(out, prefix + ".attempts", t.attempts);
  put(out, prefix + ".speculated", t.speculated);
  put(out, prefix + ".backoff_s", t.backoff_s);
  put(out, prefix + ".time_factor", t.time_factor);
  put_counters(out, prefix + ".counters", t.counters, include_footprint);
  put_counters(out, prefix + ".wasted", t.wasted, include_footprint);
}

}  // namespace

std::string to_text(const JobTrace& trace, bool include_footprint) {
  std::ostringstream out;
  put(out, "workload", trace.workload);
  put(out, "config.input_size", static_cast<std::uint64_t>(trace.config.input_size));
  put(out, "config.block_size", static_cast<std::uint64_t>(trace.config.block_size));
  put(out, "config.num_reducers", trace.config.num_reducers);
  put(out, "config.spill_buffer", static_cast<std::uint64_t>(trace.config.spill_buffer));
  put(out, "config.use_combiner", trace.config.use_combiner);
  put(out, "config.compress_map_output", trace.config.compress_map_output);
  put(out, "config.compression_ratio", trace.config.compression_ratio);
  put(out, "config.sim_scale", trace.config.sim_scale);
  put(out, "config.seed", trace.config.seed);
  put(out, "combiner_saturated", trace.combiner_saturated);
  put(out, "map_tasks", static_cast<std::uint64_t>(trace.map_tasks.size()));
  put(out, "reduce_tasks", static_cast<std::uint64_t>(trace.reduce_tasks.size()));
  for (std::size_t i = 0; i < trace.map_tasks.size(); ++i) {
    put_task(out, "map[" + std::to_string(i) + "]", trace.map_tasks[i], include_footprint);
  }
  for (std::size_t i = 0; i < trace.reduce_tasks.size(); ++i) {
    put_task(out, "reduce[" + std::to_string(i) + "]", trace.reduce_tasks[i], include_footprint);
  }
  put_counters(out, "setup", trace.setup, include_footprint);
  put_counters(out, "cleanup", trace.cleanup, include_footprint);
  return out.str();
}

std::string first_divergence(const std::string& expected, const std::string& actual) {
  std::istringstream e(expected), a(actual);
  std::string el, al;
  for (std::size_t line = 1;; ++line) {
    bool have_e = static_cast<bool>(std::getline(e, el));
    bool have_a = static_cast<bool>(std::getline(a, al));
    if (!have_e && !have_a) return "";
    if (!have_e) return "line " + std::to_string(line) + ": expected <end of trace> got '" + al + "'";
    if (!have_a) return "line " + std::to_string(line) + ": expected '" + el + "' got <end of trace>";
    if (el != al) return "line " + std::to_string(line) + ": expected '" + el + "' got '" + al + "'";
  }
}

}  // namespace bvl::mr
