#include "mapreduce/api.hpp"

#include "util/error.hpp"

namespace bvl::mr {

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

int JobDefinition::partition(std::string_view key, int num_reducers) const {
  require(num_reducers > 0, "partition: no reducers");
  return static_cast<int>(stable_hash(key) % static_cast<std::uint64_t>(num_reducers));
}

}  // namespace bvl::mr
