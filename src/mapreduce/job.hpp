// Job configuration: the tuning knobs the paper sweeps plus engine
// scaling parameters.
#pragma once

#include <cstdint>

#include "mapreduce/fault.hpp"
#include "util/units.hpp"

namespace bvl::mr {

struct JobConfig {
  /// Logical input size per node (the paper runs 1/10/20 GB per node).
  Bytes input_size = 1 * GB;

  /// HDFS block size: the paper's system-level knob (32-512 MB).
  Bytes block_size = 128 * MB;

  /// Reduce task count; 0 forces map-only regardless of the job
  /// definition (engine uses definition default when < 0).
  int num_reducers = -1;

  /// Map-side sort buffer (mapreduce.task.io.sort.mb); spills happen
  /// when the buffered output exceeds it.
  Bytes spill_buffer = 100 * MB;

  bool use_combiner = true;

  /// mapreduce.map.output.compress: spills, the merged map output and
  /// the shuffle travel compressed (the standard TeraSort tuning).
  /// The engine still executes on raw data; the perf overlay divides
  /// intermediate byte volumes by `compression_ratio` and charges the
  /// codec's CPU cost per uncompressed byte.
  bool compress_map_output = false;
  double compression_ratio = 3.5;

  /// Logical-to-executed ratio: the engine actually executes
  /// input_size / sim_scale bytes of generated data per node and
  /// rescales the counters. 1 executes everything.
  double sim_scale = 1.0;

  /// Task-executor width: the engine runs the job's map tasks (and
  /// then its reduce tasks) concurrently on a worker pool of this many
  /// threads. 0 = one worker per hardware thread; 1 = the legacy
  /// serial path. Task results are merged in task-index order, so the
  /// emitted JobTrace is bit-identical for every value (verified by
  /// tests/mapreduce/test_engine_parallel.cpp).
  int exec_threads = 0;

  /// Fault-injection plan plus retry/speculation policy (see
  /// mapreduce/fault.hpp). The default plan is inactive: the engine
  /// takes its fault-free path and the trace is bit-identical to a
  /// build without the fault layer (tests/golden enforces this).
  FaultPlan fault;

  std::uint64_t seed = 42;
};

}  // namespace bvl::mr
