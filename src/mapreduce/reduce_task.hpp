// Reduce task execution: fetch the task's partition segments from
// every map output (shuffle), merge the sorted segments, group equal
// keys, run the Reducer, and write job output. Shuffle volume and
// merge traffic are charged to the reduce task's counters, matching
// Hadoop's accounting (shuffle time is part of the reduce phase).
#pragma once

#include <vector>

#include "mapreduce/api.hpp"
#include "mapreduce/counters.hpp"
#include "mapreduce/kv.hpp"

namespace bvl::mr {

struct ReduceTaskResult {
  WorkCounters counters;   ///< executed-scale counters
  std::vector<KV> output;  ///< job output records from this task
};

/// `segments` are the sorted per-map-task slices routed to this
/// reduce partition; they are consumed.
ReduceTaskResult run_reduce_task(const JobDefinition& def, std::vector<std::vector<KV>> segments);

}  // namespace bvl::mr
