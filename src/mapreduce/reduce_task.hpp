// Reduce task execution: fetch the task's partition segments from
// every map output (shuffle), merge the sorted segments, group equal
// keys, run the Reducer, and write job output. Shuffle volume and
// merge traffic are charged to the reduce task's counters, matching
// Hadoop's accounting (shuffle time is part of the reduce phase).
//
// Zero-copy shuffle: a segment is a RunView — an index of KVRefs into
// the producing map task's sealed output arena. The group iterator
// streams globally sorted key groups straight off the cursor heap, so
// reducer inputs are views into the map-output arenas and the merged
// intermediate is never materialized.
#pragma once

#include <vector>

#include "mapreduce/api.hpp"
#include "mapreduce/arena.hpp"
#include "mapreduce/counters.hpp"
#include "mapreduce/kv.hpp"

namespace bvl::mr {

struct ReduceTaskResult {
  WorkCounters counters;  ///< executed-scale counters
  ArenaRun output;        ///< job output records from this task
};

/// `segments` are the sorted per-map-task slices routed to this
/// reduce partition. The arenas they view (the map outputs) must stay
/// alive for the duration of the call.
ReduceTaskResult run_reduce_task(const JobDefinition& def, std::vector<RunView> segments);

}  // namespace bvl::mr
