// Fault model for the MapReduce engine (Hadoop 2.x semantics).
//
// A FaultPlan describes a *deterministic* fault process: targeted
// events (fail this attempt of that task, slow that task down, lose a
// node) plus a seeded background process that strikes task attempts
// with configured probabilities. The outcome of every
// (phase, task, attempt) triple is a pure function of the plan, so a
// faulty run is exactly reproducible — same plan + same job seed ⇒
// identical JobTrace at every exec_threads width.
//
// Recovery mirrors Hadoop's machinery:
//  * bounded retry — a failed attempt is re-executed on the same
//    split (same task seed, hence identical output) after an
//    exponential backoff wait, up to max_attempts; exhausting the
//    budget fails the job (bvl::Error), as mapreduce.map.maxattempts
//    does;
//  * speculative execution — when a task's committed attempt
//    progresses slower than speculative_threshold × the wave median
//    rate, a backup attempt is launched the moment a median task
//    finishes; the first finisher wins, the loser is killed and its
//    partial work is charged as waste (TaskTrace::wasted).
//
// An inactive plan (no events, zero probabilities — the default) is
// guaranteed to leave the engine's output bit-identical to a build
// without this layer; tests/golden enforces that invariant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bvl::mr {

enum class TaskPhase { kMap, kReduce };

enum class FaultKind {
  kFail,      ///< the attempt dies after reaching `fraction` progress
  kSlowdown,  ///< the attempt survives at 1/`factor` progress rate
  kNodeLoss,  ///< every task of `phase` placed on `node` loses `attempt`
};

/// One targeted injected event.
struct FaultEvent {
  FaultKind kind = FaultKind::kFail;
  TaskPhase phase = TaskPhase::kMap;
  std::size_t task = 0;   ///< task index within the phase (kFail/kSlowdown)
  int attempt = 0;        ///< attempt the event strikes (0-based)
  double fraction = 0.5;  ///< kFail/kNodeLoss: progress reached when the attempt dies
  double factor = 4.0;    ///< kSlowdown: progress-rate divisor (>= 1)
  int node = 0;           ///< kNodeLoss: victim node (tasks map to node = task % nodes)
};

/// The full fault/recovery configuration carried by JobConfig.
struct FaultPlan {
  // Background fault process, hashed per (phase, task, attempt).
  std::uint64_t seed = 0;
  double fail_prob = 0.0;        ///< per-attempt failure probability
  double straggler_prob = 0.0;   ///< per-attempt slowdown probability
  double straggler_factor = 4.0; ///< rate divisor of a background straggler

  // Targeted events, applied before the background process.
  std::vector<FaultEvent> events;

  // Recovery policy (Hadoop defaults).
  int max_attempts = 4;          ///< mapreduce.{map,reduce}.maxattempts
  double backoff_base_s = 1.0;   ///< retry after failure #k waits backoff_base * 2^k
  bool speculative = true;       ///< mapreduce.{map,reduce}.speculative
  double speculative_threshold = 1.5;  ///< backup when slowdown > threshold * wave median
  int nodes = 3;                 ///< cluster size for the kNodeLoss task->node mapping

  /// True when the plan can perturb an execution at all. Inactive
  /// plans take the engine's fault-free fast path.
  bool active() const { return fail_prob > 0 || straggler_prob > 0 || !events.empty(); }

  /// Stable digest of every semantically relevant field, for trace
  /// cache keys (core::Characterizer).
  std::uint64_t cache_key() const;
};

/// Outcome of one task attempt under a plan.
struct AttemptOutcome {
  bool failed = false;
  double fail_fraction = 0.0;  ///< progress reached when the attempt died
  double slowdown = 1.0;       ///< surviving attempt's progress-rate divisor
};

/// Per-task recovery bookkeeping, accumulated by the engine's attempt
/// loop and finalized by resolve_speculation(). Times are in units of
/// one nominal attempt duration except backoff_s (model seconds).
struct TaskFaultLog {
  int attempts = 1;            ///< attempts consumed (committed + failed + backups)
  double wasted_fraction = 0;  ///< failed/killed attempt work, in full-attempt units
  double backoff_s = 0;        ///< cumulative retry backoff wait
  double slowdown = 1.0;       ///< committed attempt's progress-rate divisor
  double time_factor = 1.0;    ///< task completion time vs nominal (excl. backoff)
  bool speculated = false;     ///< a backup attempt was launched
};

/// Deterministic oracle over a FaultPlan.
class FaultSchedule {
 public:
  explicit FaultSchedule(const FaultPlan& plan);

  bool active() const { return plan_.active(); }
  const FaultPlan& plan() const { return plan_; }

  /// Pure function of (plan, phase, task, attempt).
  AttemptOutcome outcome(TaskPhase phase, std::size_t task, int attempt) const;

  /// Backoff wait before re-dispatching after failure number
  /// `failures` (1-based): backoff_base * 2^(failures-1).
  double backoff_s(int failures) const;

  /// Runs the bounded-retry state machine for one task: walks the
  /// attempt outcomes, accumulating waste/backoff, and returns the log
  /// positioned at the committed (surviving) attempt. Throws
  /// bvl::Error when max_attempts is exhausted.
  TaskFaultLog run_attempts(TaskPhase phase, std::size_t task) const;

  /// Hadoop-style speculation pass over one phase's logs: computes the
  /// wave-median progress rate, launches a backup for each straggler
  /// whose committed attempt is more than speculative_threshold times
  /// slower, and commits the first finisher; the loser's partial work
  /// is added to wasted_fraction. Inactive plans (and plans with
  /// speculative=false) leave the logs untouched.
  void resolve_speculation(TaskPhase phase, std::vector<TaskFaultLog>& logs) const;

 private:
  FaultPlan plan_;
};

}  // namespace bvl::mr
