#include "mapreduce/trace.hpp"

namespace bvl::mr {

namespace {
std::size_t ceil_div(std::size_t tasks, int threads) {
  std::size_t w = threads < 1 ? 1 : static_cast<std::size_t>(threads);
  return (tasks + w - 1) / w;
}
}  // namespace

std::size_t JobTrace::map_exec_waves() const { return ceil_div(map_tasks.size(), exec_threads_used); }

std::size_t JobTrace::reduce_exec_waves() const {
  return ceil_div(reduce_tasks.size(), exec_threads_used);
}

WorkCounters JobTrace::map_total() const {
  WorkCounters total;
  for (const auto& t : map_tasks) total.add(t.counters);
  return total;
}

WorkCounters JobTrace::reduce_total() const {
  WorkCounters total;
  for (const auto& t : reduce_tasks) total.add(t.counters);
  return total;
}

int JobTrace::total_attempts() const {
  int n = 0;
  for (const auto& t : map_tasks) n += t.attempts;
  for (const auto& t : reduce_tasks) n += t.attempts;
  return n;
}

int JobTrace::speculative_backups() const {
  int n = 0;
  for (const auto& t : map_tasks) n += t.speculated ? 1 : 0;
  for (const auto& t : reduce_tasks) n += t.speculated ? 1 : 0;
  return n;
}

double JobTrace::total_backoff_s() const {
  double s = 0;
  for (const auto& t : map_tasks) s += t.backoff_s;
  for (const auto& t : reduce_tasks) s += t.backoff_s;
  return s;
}

WorkCounters JobTrace::wasted_total() const {
  WorkCounters total;
  for (const auto& t : map_tasks) total.add(t.wasted);
  for (const auto& t : reduce_tasks) total.add(t.wasted);
  return total;
}

WorkCounters JobTrace::job_total() const {
  WorkCounters total = map_total();
  total.add(reduce_total());
  total.add(setup);
  total.add(cleanup);
  return total;
}

}  // namespace bvl::mr
