#include "mapreduce/trace.hpp"

namespace bvl::mr {

WorkCounters JobTrace::map_total() const {
  WorkCounters total;
  for (const auto& t : map_tasks) total.add(t.counters);
  return total;
}

WorkCounters JobTrace::reduce_total() const {
  WorkCounters total;
  for (const auto& t : reduce_tasks) total.add(t.counters);
  return total;
}

WorkCounters JobTrace::job_total() const {
  WorkCounters total = map_total();
  total.add(reduce_total());
  total.add(setup);
  total.add(cleanup);
  return total;
}

}  // namespace bvl::mr
