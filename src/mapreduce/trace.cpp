#include "mapreduce/trace.hpp"

namespace bvl::mr {

namespace {
std::size_t ceil_div(std::size_t tasks, int threads) {
  std::size_t w = threads < 1 ? 1 : static_cast<std::size_t>(threads);
  return (tasks + w - 1) / w;
}
}  // namespace

std::size_t JobTrace::map_exec_waves() const { return ceil_div(map_tasks.size(), exec_threads_used); }

std::size_t JobTrace::reduce_exec_waves() const {
  return ceil_div(reduce_tasks.size(), exec_threads_used);
}

WorkCounters JobTrace::map_total() const {
  WorkCounters total;
  for (const auto& t : map_tasks) total.add(t.counters);
  return total;
}

WorkCounters JobTrace::reduce_total() const {
  WorkCounters total;
  for (const auto& t : reduce_tasks) total.add(t.counters);
  return total;
}

WorkCounters JobTrace::job_total() const {
  WorkCounters total = map_total();
  total.add(reduce_total());
  total.add(setup);
  total.add(cleanup);
  return total;
}

}  // namespace bvl::mr
