// Library-wide exception type and precondition check helper.
#pragma once

#include <stdexcept>
#include <string>

namespace bvl {

/// Thrown on invalid configuration or violated preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws bvl::Error with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

}  // namespace bvl
