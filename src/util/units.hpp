// Unit helpers and aliases used throughout the library.
//
// All simulated quantities are carried in SI base units as doubles
// (seconds, joules, watts, hertz) or as byte counts (std::uint64_t).
// The helpers below make call sites read like the paper's parameter
// tables ("512 MB HDFS block", "1.8 GHz").
#pragma once

#include <cstdint>

namespace bvl {

using Seconds = double;
using Joules = double;
using Watts = double;
using Hertz = double;
using Volts = double;
using Bytes = std::uint64_t;

/// Binary kilobyte (Hadoop block sizes are power-of-two MB).
constexpr Bytes KB = 1024ULL;
constexpr Bytes MB = 1024ULL * KB;
constexpr Bytes GB = 1024ULL * MB;

constexpr Hertz kHz = 1e3;
constexpr Hertz MHz = 1e6;
constexpr Hertz GHz = 1e9;

/// Convenience literal-style constructors.
constexpr Bytes mega_bytes(double n) { return static_cast<Bytes>(n * static_cast<double>(MB)); }
constexpr Bytes giga_bytes(double n) { return static_cast<Bytes>(n * static_cast<double>(GB)); }
constexpr Hertz giga_hertz(double n) { return n * GHz; }

/// Bytes -> floating megabytes/gigabytes (for reporting).
constexpr double to_mb(Bytes b) { return static_cast<double>(b) / static_cast<double>(MB); }
constexpr double to_gb(Bytes b) { return static_cast<double>(b) / static_cast<double>(GB); }

}  // namespace bvl
