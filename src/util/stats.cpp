#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bvl {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  require(n_ > 0, "Accumulator::mean on empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  require(n_ > 0, "Accumulator::min on empty accumulator");
  return min_;
}

double Accumulator::max() const {
  require(n_ > 0, "Accumulator::max on empty accumulator");
  return max_;
}

double geomean(const std::vector<double>& xs) {
  require(!xs.empty(), "geomean of empty vector");
  double acc = 0.0;
  for (double x : xs) {
    require(x > 0.0, "geomean requires positive values");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  require(!xs.empty(), "percentile of empty vector");
  require(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double relative_variation(const std::vector<double>& xs) {
  require(!xs.empty(), "relative_variation of empty vector");
  double lo = *std::min_element(xs.begin(), xs.end());
  double hi = *std::max_element(xs.begin(), xs.end());
  if (hi == 0.0) return 0.0;
  return (hi - lo) / hi;
}

bool approx_equal(double a, double b, double tol) {
  double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace bvl
