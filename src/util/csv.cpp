#include "util/csv.hpp"

namespace bvl {

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace bvl
