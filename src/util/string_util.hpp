// Small string helpers used by record readers and the Grep/WordCount
// tokenizers. Kept allocation-light: tokenization walks string_views.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bvl {

/// Splits on a single delimiter; empty fields preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Whitespace tokenizer (space/tab/newline); empty tokens skipped.
std::vector<std::string_view> tokenize(std::string_view s);

/// Calls `fn(token)` per whitespace-separated token without building a
/// vector — the hot path for WordCount over large splits.
template <typename Fn>
void for_each_token(std::string_view s, Fn&& fn) {
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
    std::size_t start = i;
    while (i < s.size() && !(s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
    if (i > start) fn(s.substr(start, i - start));
  }
}

std::string to_lower(std::string_view s);

/// True when `s` contains `needle` (plain substring search).
bool contains(std::string_view s, std::string_view needle);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strict base-10 parse of a non-negative int for flag values.
/// Rejects empty strings, signs, whitespace, trailing junk and
/// overflow — nullopt instead of atoi's silent 0.
std::optional<int> parse_non_negative_int(std::string_view s);

/// How one argv entry relates to a `--flag VALUE` / `--flag=VALUE`
/// option (the convention every bench binary follows).
enum class FlagMatch {
  kNoMatch,      ///< not this flag (including `--flagsuffix` variants)
  kNeedsValue,   ///< bare `--flag`: the value is the NEXT argv entry
  kInlineValue,  ///< `--flag=VALUE`: `*value` holds VALUE (may be empty)
};

/// Matches `arg` against `flag` (e.g. "--cache-dir"). On kInlineValue
/// the view after '=' is written to `*value` when `value` is non-null;
/// otherwise `*value` is left untouched.
FlagMatch match_flag(std::string_view arg, std::string_view flag, std::string_view* value);

}  // namespace bvl
