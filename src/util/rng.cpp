#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bvl {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31u));
}

std::uint64_t Pcg32::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

double Pcg32::next_double() {
  // 53 random bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

std::uint64_t Pcg32::uniform(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Pcg32::uniform: lo > hi");
  std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  return lo + next_u64() % span;
}

double Pcg32::uniform_real(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Pcg32::chance(double p) { return next_double() < p; }

double Pcg32::exponential(double lambda) {
  require(lambda > 0, "Pcg32::exponential: rate must be positive");
  // next_double() < 1, so the log argument stays in (0, 1] and the
  // result is finite and non-negative.
  return -std::log(1.0 - next_double()) / lambda;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : cdf_(n), s_(s) {
  require(n > 0, "ZipfSampler: empty support");
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = acc;
  }
  for (auto& c : cdf_) c /= acc;

  // Bucket index: index_[b] is the first rank whose CDF reaches
  // b/kBuckets, so a draw u in bucket b can only land in
  // [index_[b], index_[b+1]]. The normalized CDF ends at exactly 1.0,
  // so every threshold has a qualifying rank.
  index_.resize(kBuckets + 1);
  std::size_t r = 0;
  for (std::size_t b = 0; b <= kBuckets; ++b) {
    double threshold = static_cast<double>(b) / static_cast<double>(kBuckets);
    while (cdf_[r] < threshold) ++r;
    index_[b] = static_cast<std::uint32_t>(r);
  }
}

std::size_t ZipfSampler::sample(Pcg32& rng) const {
  double u = rng.next_double();
  // Narrow to the draw's bucket, then finish with a branchless
  // lower_bound (cmov per step — the probe-result branch is
  // unpredictable by construction). Result is identical to a full
  // std::lower_bound over the CDF: the first rank with cdf >= u.
  std::size_t b = static_cast<std::size_t>(u * static_cast<double>(kBuckets));
  const double* base = cdf_.data() + index_[b];
  std::size_t n = index_[b + 1] - index_[b] + 1;
  while (n > 1) {
    std::size_t half = n / 2;
    base += (base[half - 1] < u) ? half : 0;
    n -= half;
  }
  return static_cast<std::size_t>(base - cdf_.data());
}

}  // namespace bvl
