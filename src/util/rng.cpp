#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bvl {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31u));
}

std::uint64_t Pcg32::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

double Pcg32::next_double() {
  // 53 random bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

std::uint64_t Pcg32::uniform(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Pcg32::uniform: lo > hi");
  std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  return lo + next_u64() % span;
}

double Pcg32::uniform_real(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Pcg32::chance(double p) { return next_double() < p; }

ZipfSampler::ZipfSampler(std::size_t n, double s) : cdf_(n), s_(s) {
  require(n > 0, "ZipfSampler: empty support");
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Pcg32& rng) const {
  double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace bvl
