// Streaming statistics and small numeric helpers used by the power
// meter, the characterization sweeps, and the benches.
#pragma once

#include <cstddef>
#include <vector>

namespace bvl {

/// Welford streaming accumulator: mean/variance/min/max without
/// storing samples.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1); 0 if n < 2
  double stddev() const;
  double min() const;  ///< requires count() > 0
  double max() const;  ///< requires count() > 0
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Geometric mean of positive values; throws on empty input or
/// non-positive values.
double geomean(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0,100]; throws on empty input.
double percentile(std::vector<double> xs, double p);

/// Relative spread (max-min)/max expressed as a fraction, matching how
/// the paper reports "up to X% variation" across a tuning sweep.
double relative_variation(const std::vector<double>& xs);

/// True when |a-b| <= tol * max(|a|,|b|,1).
bool approx_equal(double a, double b, double tol = 1e-9);

}  // namespace bvl
