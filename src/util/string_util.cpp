#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

namespace bvl {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> tokenize(std::string_view s) {
  std::vector<std::string_view> out;
  for_each_token(s, [&](std::string_view tok) { out.push_back(tok); });
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::optional<int> parse_non_negative_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  long long value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
    if (value > std::numeric_limits<int>::max()) return std::nullopt;
  }
  return static_cast<int>(value);
}

FlagMatch match_flag(std::string_view arg, std::string_view flag, std::string_view* value) {
  if (arg == flag) return FlagMatch::kNeedsValue;
  if (arg.size() > flag.size() && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    if (value != nullptr) *value = arg.substr(flag.size() + 1);
    return FlagMatch::kInlineValue;
  }
  return FlagMatch::kNoMatch;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace bvl
