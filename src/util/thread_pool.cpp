#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bvl {

ThreadPool::ThreadPool(int threads) {
  int n = resolve(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool::TaskId ThreadPool::submit(std::function<void()> task) {
  require(task != nullptr, "ThreadPool::submit: null task");
  TaskId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_index_++;
    queue_.emplace_back(id, std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
  return id;
}

bool ThreadPool::cancel(TaskId id) {
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queue_.begin();
    while (it != queue_.end() && it->first != id) ++it;
    if (it == queue_.end()) return false;  // already started or finished
    queue_.erase(it);
    --in_flight_;
    all_done = in_flight_ == 0;
  }
  if (all_done) done_cv_.notify_all();
  return true;
}

std::size_t ThreadPool::cancel_pending() {
  std::size_t cancelled;
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled = queue_.size();
    queue_.clear();
    in_flight_ -= cancelled;
    all_done = cancelled > 0 && in_flight_ == 0;
  }
  if (all_done) done_cv_.notify_all();
  return cancelled;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::pair<std::size_t, std::function<void()>> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      item.second();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && (!error_ || item.first < error_index_)) {
        error_ = err;
        error_index_ = item.first;
      }
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // A few chunks per worker balances load without a queue op per index.
  std::size_t target_chunks = static_cast<std::size_t>(size()) * 4;
  std::size_t chunk = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    std::size_t end = std::min(n, begin + chunk);
    submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wait();
}

int ThreadPool::hardware_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int ThreadPool::resolve(int requested) {
  if (requested <= 0) return hardware_threads();
  return requested;
}

void parallel_for(int threads, std::size_t n, const std::function<void(std::size_t)>& fn) {
  int resolved = ThreadPool::resolve(threads);
  if (resolved <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(resolved);
  pool.parallel_for(n, fn);
}

}  // namespace bvl
