// Fixed-size worker pool with a chunked work queue, used by the
// MapReduce engine to execute task waves and by the cluster simulator
// to warm characterization caches.
//
// Design constraints (see DESIGN.md "Threading model"):
//  * Workers never see partial work items: submit() enqueues whole
//    closures; parallel_for() enqueues contiguous index chunks so a
//    queue pop amortizes synchronization over several tasks.
//  * Exceptions thrown by tasks are captured and rethrown from wait()
//    — the one with the lowest submission index wins, so failure
//    behaviour is deterministic regardless of worker interleaving.
//  * The pool is reusable: wait() leaves the workers parked for the
//    next batch (the engine runs the map wave and the reduce wave on
//    one pool).
//  * Queued tasks can be cancelled before they start (cancel /
//    cancel_pending) — the mechanism competing speculative attempts
//    use to kill the losing attempt; a task that already started
//    always runs to completion.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace bvl {

class ThreadPool {
 public:
  /// Identifies a submitted task (its submission index), for cancel().
  using TaskId = std::size_t;

  /// Spawns `threads` workers (resolved via resolve(), so 0 means one
  /// per hardware thread).
  explicit ThreadPool(int threads);

  /// Destruction with work still queued is safe: the workers drain
  /// every remaining task (capturing, not rethrowing, any exception a
  /// late task throws) and then join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task and returns its id. Single producer: call from
  /// the owning thread only, never from inside a task.
  TaskId submit(std::function<void()> task);

  /// Removes a task that has not started yet; returns true on success,
  /// false when the task already started (or finished). A cancelled
  /// task never runs — the engine uses this to kill the losing side of
  /// a speculative attempt pair before it wastes a worker.
  bool cancel(TaskId id);

  /// Cancels every queued-but-not-started task; returns how many were
  /// removed. Tasks already running are unaffected (wait() still
  /// blocks on them).
  std::size_t cancel_pending();

  /// Blocks until every submitted task finished; then rethrows the
  /// captured exception of the earliest-submitted failing task, if
  /// any, and resets the error state so the pool can be reused.
  void wait();

  /// Runs fn(i) for every i in [0, n), chunking the index space into
  /// contiguous ranges (several chunks per worker for load balancing)
  /// and blocking until done. fn receives identical arguments
  /// regardless of pool size, so any per-index output is
  /// thread-count-invariant. Rethrows like wait().
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static int hardware_threads();

  /// Resolves a thread-count knob: 0 (auto) -> hardware_threads();
  /// anything else is clamped to >= 1.
  static int resolve(int requested);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty or stopping
  std::condition_variable done_cv_;  ///< wait(): all submitted work drained
  std::deque<std::pair<std::size_t, std::function<void()>>> queue_;
  std::size_t next_index_ = 0;  ///< submission order, for deterministic rethrow
  std::size_t in_flight_ = 0;   ///< queued + currently running tasks
  bool stop_ = false;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
  std::vector<std::thread> workers_;
};

/// One-shot convenience: parallel_for on a temporary pool when
/// `threads` > 1 and `n` > 1, otherwise inline on the caller (the
/// serial path — exceptions then propagate directly).
void parallel_for(int threads, std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace bvl
