#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace bvl {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) rule.emplace_back(width[c], '-');
  emit(rule);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2E", v);
  return buf;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace bvl
