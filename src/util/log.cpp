#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace bvl {

namespace {
// Atomic level + a sink mutex keep logging safe from engine worker
// threads (levels are read on every call site, possibly concurrently
// with a set_log_level from the main thread).
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_sink_mu;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  const char* tag = level == LogLevel::kDebug ? "debug" : level == LogLevel::kInfo ? "info" : "warn";
  std::lock_guard<std::mutex> lock(g_sink_mu);
  std::cerr << "[bvl:" << tag << "] " << msg << '\n';
}

}  // namespace bvl
