#include "util/log.hpp"

#include <iostream>

namespace bvl {

namespace {
LogLevel g_level = LogLevel::kOff;
}

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  const char* tag = level == LogLevel::kDebug ? "debug" : level == LogLevel::kInfo ? "info" : "warn";
  std::cerr << "[bvl:" << tag << "] " << msg << '\n';
}

}  // namespace bvl
