// Tiny leveled logger. Off by default so tests and benches stay quiet;
// examples flip it on to narrate what the engine is doing.
#pragma once

#include <sstream>
#include <string>

namespace bvl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `msg` to stderr when `level` passes the threshold.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
inline void fold(std::ostringstream&) {}
template <typename T, typename... Rest>
void fold(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  fold(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream os;
  detail::fold(os, args...);
  log_message(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream os;
  detail::fold(os, args...);
  log_message(LogLevel::kDebug, os.str());
}

}  // namespace bvl
