// Minimal CSV writer so benches can optionally dump machine-readable
// series next to the human-readable tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace bvl {

/// Writes RFC-4180-ish CSV rows to an ostream. Fields containing
/// commas, quotes, or newlines are quoted.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& cells);

  /// Escapes a single field per CSV quoting rules.
  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

}  // namespace bvl
