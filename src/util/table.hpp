// ASCII table rendering for the benchmark harnesses. The benches print
// each paper table/figure as an aligned text table so the series can be
// compared to the paper by eye or diffed between runs.
#pragma once

#include <string>
#include <vector>

namespace bvl {

/// Column-aligned text table. Cells are strings; numeric formatting
/// helpers are below.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   app    freq    time
  ///   -----  ------  ------
  ///   WC     1.2     12.3
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal, e.g. fmt_fixed(3.14159, 2) == "3.14".
std::string fmt_fixed(double v, int precision);

/// Scientific notation matching the paper's Table 3 style,
/// e.g. fmt_sci(4.2e5) == "4.20E+05".
std::string fmt_sci(double v);

/// Compact general-purpose number (trims trailing zeros).
std::string fmt_num(double v);

}  // namespace bvl
