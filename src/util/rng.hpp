// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (data generation, placement
// jitter) flows through Pcg32 so experiments are exactly reproducible
// from a seed. Zipf sampling is provided for text-corpus generation:
// word frequencies in natural text are Zipf-distributed, which is what
// makes WordCount's combiner effective and Grep's matches sparse.
#pragma once

#include <cstdint>
#include <vector>

namespace bvl {

/// PCG-XSH-RR 32-bit generator (O'Neill 2014). Small state, good
/// statistical quality, fully deterministic across platforms.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with probability p.
  bool chance(double p);

  /// Exponential with rate lambda > 0 (mean 1/lambda) — interarrival
  /// and service draws for the Poisson job stream and the queueing
  /// differential tests. Inverse-CDF on next_double(), so a seeded
  /// stream of draws is identical across platforms.
  double exponential(double lambda);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s
/// using a precomputed inverse CDF table. Suitable for vocabulary sizes
/// up to a few hundred thousand.
///
/// A bucket index over the CDF narrows each draw's binary search to
/// the few ranks whose CDF mass straddles the draw's bucket; with a
/// Zipf head most draws resolve in one or two probes instead of
/// log2(n). The index changes only the search path, never the sampled
/// rank, so generated corpora are bit-identical with or without it.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Pcg32& rng) const;
  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

 private:
  static constexpr std::size_t kBuckets = 4096;

  std::vector<double> cdf_;
  std::vector<std::uint32_t> index_;  // kBuckets + 1 search lower bounds
  double s_;
};

}  // namespace bvl
